//! # flow-serve — batched, cached, deadline-aware flow-query serving
//!
//! The paper's estimators answer one flow question per chain; a serving
//! deployment answers *streams* of overlapping questions against one
//! learned ICM. This crate is the layer between the two:
//!
//! * [`QueryKey`] — canonical query identity (normalized conditions,
//!   resolved config class, model fingerprint), so equivalent requests
//!   collide and retrained models never serve stale answers;
//! * [`ServeCache`] — a byte-budgeted LRU of chain *statistics* (counts,
//!   seed, resumable checkpoint), enabling exact cache hits when the
//!   cached precision meets the request tolerance and warm chain
//!   refinement when it almost does;
//! * [`plan_batch`] — the planner: reject contradictions before
//!   sampling, serve hits, group the rest by chain identity so `k`
//!   same-source queries pay one burn-in;
//! * [`run_plans`] — a fixed worker pool with a bounded admission queue,
//!   a configurable step-budget admission policy (shed plans carry
//!   typed `Overloaded` errors with retry-after hints), and
//!   deterministic capped-backoff retry of transient failures;
//! * [`CircuitBreaker`] — per-chain breakers that short-circuit
//!   persistently failing chains into degraded cached answers, with
//!   half-open probes on a deterministic schedule;
//! * [`ServeEngine`] — ties the above together per batch, maps per-query
//!   deadlines/step budgets onto graceful degradation
//!   ([`flow_mcmc::DegradationReason`], including the serving-specific
//!   `PrecisionNotReached`), and keeps cumulative [`ServeStats`];
//!   constructed through the validating [`EngineBuilder`];
//! * [`route`] — the sharded router: with `shards > 1` each query runs
//!   on the minimal set of shards covering its relevant subgraph, on
//!   per-shard child engines over projected sub-models
//!   ([`flow_icm::SubIcm`]) whose chains walk `m_shard << m` edges;
//! * [`spec`] — the `repro serve` JSONL query-file format.
//!
//! Determinism contract: a query's answer is a pure function of
//! `(engine seed, canonical key, sample budget)` — chain seeds derive
//! from the chain key, not from batch composition, so solo, batched,
//! and cache-hit answers for the same question are bit-identical. The
//! serving architecture is specified in DESIGN.md §11 and its failure
//! semantics (shedding, retry, breakers, cache quarantine) in §12.

pub mod breaker;
pub mod cache;
pub mod engine;
pub mod exec;
pub mod key;
pub mod plan;
pub mod route;
pub mod spec;

pub use breaker::{BreakerConfig, BreakerDecision, CircuitBreaker};
pub use cache::{half_width, CacheEntry, ServeCache};
pub use engine::{
    Answer, EngineBuilder, QueryOutcome, ServeConfig, ServeEngine, ServeStats, Served,
};
pub use exec::{
    run_plans, run_plans_report, run_plans_strict, ExecReport, ExecutorConfig, PlanStatus,
    RetryPolicy,
};
pub use key::{model_fingerprint, ConfigClass, Fnv64, QueryKey};
pub use plan::{
    mix64, plan_batch, samples_for_tolerance, BatchPlan, EarlyResolution, FlowQuery, Plan,
    PlanEntry, PlanWork, PlannerConfig,
};
pub use route::{route_query, Route};
pub use spec::{parse_query_file, ModelSpec, QueryFile, QuerySpec};

// Re-exported so engine consumers can build targets and read counts
// without depending on flow-mcmc directly.
pub use flow_mcmc::{SharedTarget, TargetCounts};
