//! Query-relevant subgraph routing for sharded serving.
//!
//! [`route_query`] maps a planned query to the minimal set of shards
//! whose union covers every edge the answer can depend on: the
//! [`relevant_edges`] between the query's source and targets, plus the
//! relevant edges of each flow condition's endpoint pair (DESIGN.md
//! §16). Under the ICM's edge independence, every edge outside that
//! union is independent of both the flow indicator and the condition
//! indicators, so a sub-model containing the routed shards answers
//! with the full model's distribution — the estimates agree within
//! estimator tolerance, while the chain runs over a sub-multinomial of
//! `m_shard << m` edges.
//!
//! Fallback policy: a query routes to the sharded path only when its
//! shard set is a **proper** subset of the partition (`|S| < K`);
//! spanning every shard, or touching none (source cannot reach the
//! target at all), falls back to the global engine, which behaves
//! byte-identically to an unsharded engine. With `K = 1` every query
//! falls back, which is what makes `--shards 1` byte-identical to
//! unsharded serving.

use crate::plan::FlowQuery;
use flow_core::FlowError;
use flow_graph::{relevant_edges, EdgePartition, NodeId};
use flow_icm::Icm;
use flow_mcmc::SharedTarget;
use std::collections::BTreeSet;

/// Where one query runs under a sharded engine.
#[derive(Clone, Debug)]
pub enum Route {
    /// Serve on the global engine, exactly as an unsharded engine
    /// would: the query spans every shard, or touches no edge at all.
    Global,
    /// The query's relevant subgraph is covered by this proper subset
    /// of shards (sorted, deduplicated).
    Shards(Vec<u32>),
    /// The query is not representable on the sharded path: a typed
    /// rejection, never a silent drop.
    Reject(FlowError),
}

/// Routes one query against a partition.
///
/// A flow condition whose endpoints are connected by no directed path
/// lies outside every reachable subgraph; the sharded router rejects
/// such queries with a typed [`FlowError::GraphInconsistency`] instead
/// of silently dropping the condition (a required flow would be
/// unsatisfiable, a forbidden one vacuous — either way the query is
/// malformed with respect to the graph).
pub fn route_query(icm: &Icm, partition: &EdgePartition, query: &FlowQuery) -> Route {
    let graph = icm.graph();
    let targets: Vec<NodeId> = match &query.target {
        SharedTarget::Sink(s) => vec![*s],
        SharedTarget::Community(members) => members.clone(),
    };
    let mut shards: BTreeSet<u32> = BTreeSet::new();
    let mut any = false;
    for e in relevant_edges(graph, &[query.source], &targets) {
        any = true;
        shards.insert(partition.shard_of(e));
    }
    for c in &query.conditions {
        if c.source == c.sink {
            // `u ~> u` holds vacuously; no edge constrains it.
            continue;
        }
        let mut connected = false;
        for e in relevant_edges(graph, &[c.source], &[c.sink]) {
            connected = true;
            shards.insert(partition.shard_of(e));
        }
        if !connected {
            return Route::Reject(FlowError::GraphInconsistency {
                detail: format!(
                    "flow condition {}~>{} lies outside the reachable subgraph: \
                     no directed path connects its endpoints",
                    c.source.0, c.sink.0
                ),
            });
        }
    }
    if !any || shards.len() as u32 >= partition.shard_count() {
        return Route::Global;
    }
    Route::Shards(shards.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow_graph::graph::graph_from_edges;
    use flow_graph::partition_edges;
    use flow_icm::FlowCondition;

    /// Two disjoint diamonds: nodes 0–3 and 4–7.
    fn two_communities() -> Icm {
        let g = graph_from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (4, 5),
                (4, 6),
                (5, 7),
                (6, 7),
            ],
        );
        Icm::new(g, vec![0.5; 8])
    }

    #[test]
    fn single_community_query_routes_to_one_shard() {
        let icm = two_communities();
        let p = partition_edges(icm.graph(), 2);
        let q = FlowQuery::flow(NodeId(0), NodeId(3));
        match route_query(&icm, &p, &q) {
            Route::Shards(s) => assert_eq!(s.len(), 1),
            other => panic!("expected a single-shard route, got {other:?}"),
        }
        let q2 = FlowQuery::flow(NodeId(4), NodeId(7));
        match route_query(&icm, &p, &q2) {
            Route::Shards(s) => assert_eq!(s.len(), 1),
            other => panic!("expected a single-shard route, got {other:?}"),
        }
    }

    #[test]
    fn unreachable_target_falls_back_to_global() {
        let icm = two_communities();
        let p = partition_edges(icm.graph(), 2);
        // 0 cannot reach 7: no relevant edges, global fallback.
        let q = FlowQuery::flow(NodeId(0), NodeId(7));
        assert!(matches!(route_query(&icm, &p, &q), Route::Global));
    }

    #[test]
    fn one_shard_partitions_always_fall_back() {
        let icm = two_communities();
        let p = partition_edges(icm.graph(), 1);
        let q = FlowQuery::flow(NodeId(0), NodeId(3));
        // |S| = 1 is not a proper subset of a 1-shard partition.
        assert!(matches!(route_query(&icm, &p, &q), Route::Global));
    }

    #[test]
    fn disconnected_condition_is_a_typed_rejection() {
        let icm = two_communities();
        let p = partition_edges(icm.graph(), 2);
        let mut q = FlowQuery::flow(NodeId(0), NodeId(3));
        // 4 ~> 0 crosses from the second community into the first:
        // no directed path exists anywhere in the graph.
        q.conditions = vec![FlowCondition::requires(NodeId(4), NodeId(0))];
        match route_query(&icm, &p, &q) {
            Route::Reject(FlowError::GraphInconsistency { detail }) => {
                assert!(
                    detail.contains("outside the reachable subgraph"),
                    "{detail}"
                );
            }
            other => panic!("expected a typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn cross_community_condition_widens_the_route() {
        let icm = two_communities();
        let p = partition_edges(icm.graph(), 2);
        let mut q = FlowQuery::flow(NodeId(0), NodeId(3));
        // A condition inside the *other* community pulls its shard in;
        // spanning both shards of a 2-shard partition → global.
        q.conditions = vec![FlowCondition::forbids(NodeId(4), NodeId(7))];
        assert!(matches!(route_query(&icm, &p, &q), Route::Global));
        // With 3 shards the same pair is a proper subset again.
        let icm3 = {
            let g = graph_from_edges(
                11,
                &[
                    (0, 1),
                    (0, 2),
                    (1, 3),
                    (2, 3),
                    (4, 5),
                    (4, 6),
                    (5, 7),
                    (6, 7),
                    (8, 9),
                    (9, 10),
                ],
            );
            Icm::new(g, vec![0.5; 10])
        };
        let p3 = partition_edges(icm3.graph(), 3);
        let mut q3 = FlowQuery::flow(NodeId(0), NodeId(3));
        q3.conditions = vec![FlowCondition::forbids(NodeId(4), NodeId(7))];
        match route_query(&icm3, &p3, &q3) {
            Route::Shards(s) => assert_eq!(s.len(), 2),
            other => panic!("expected a two-shard route, got {other:?}"),
        }
    }
}
