//! Canonical query identity: the [`QueryKey`].
//!
//! Two serving requests must share cache entries and chains exactly when
//! they ask the same statistical question. The key therefore stores
//! *canonical* coordinates only:
//!
//! * the flow source and target (community members sorted + deduped);
//! * the condition set normalized by
//!   [`flow_icm::query::normalize_conditions`] (sorted, deduped,
//!   contradiction-free), so permuted or duplicated condition lists
//!   collide;
//! * the *resolved* chain configuration ([`ConfigClass`]): burn-in,
//!   thinning, and proposal convention after edge-count defaults are
//!   applied — two configs that resolve identically are the same class
//!   (sample counts are per-request precision knobs, not identity);
//! * a [`model_fingerprint`] over the ICM's shape and exact edge
//!   probability bits, versioning every entry: retrain the model and
//!   the old cache population silently misses instead of serving stale
//!   estimates.
//!
//! Hashing is FNV-1a (64-bit): deterministic across runs and platforms,
//! no dependency, and stable enough for an in-process cache index. Key
//! equality — not just hash equality — guards every cache read, so an
//! FNV collision costs a miss, never a wrong answer.
//!
//! The key's *chain key* ([`QueryKey::chain_key`]) deliberately excludes
//! the target: every same-source, same-conditions, same-class query
//! shares one chain trajectory, which is what makes batch answers
//! bit-identical to solo answers and lets the planner group them.

use flow_core::{FlowError, FlowResult};
use flow_graph::NodeId;
use flow_icm::query::normalize_conditions;
use flow_icm::{FlowCondition, Icm};
use flow_mcmc::{McmcConfig, ProposalKind, SharedTarget};

// Both hoisted to shared crates so `flow-stream`'s registry and this
// cache hash models identically; re-exported here for existing callers.
pub use flow_core::Fnv64;
pub use flow_icm::model_fingerprint;

/// The resolved chain-shaping parameters of an [`McmcConfig`]: the
/// burn-in and thinning actually used for a given edge count, plus the
/// proposal convention. Two configs in the same class drive identical
/// trajectories from the same seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigClass {
    /// Resolved burn-in steps.
    pub burn_in: u64,
    /// Resolved thinning interval (steps per retained sample).
    pub thin: u64,
    /// Proposal-weight convention.
    pub proposal: ProposalKind,
}

impl ConfigClass {
    /// Resolves a config against a model with `m` edges.
    pub fn of(config: &McmcConfig, m: usize) -> Self {
        ConfigClass {
            burn_in: config.burn_in_steps(m) as u64,
            thin: config.thin_steps(m) as u64,
            proposal: config.proposal,
        }
    }

    /// Rebuilds an explicit (already-resolved) [`McmcConfig`] asking for
    /// `samples` retained samples.
    pub fn to_config(self, samples: usize) -> McmcConfig {
        McmcConfig {
            samples,
            burn_in: Some(self.burn_in as usize),
            thin: Some(self.thin as usize),
            proposal: self.proposal,
        }
    }

    fn proposal_tag(self) -> u64 {
        match self.proposal {
            ProposalKind::ResultingActivity => 0,
            ProposalKind::CurrentActivity => 1,
        }
    }

    fn fold(self, h: Fnv64) -> Fnv64 {
        h.u64(self.burn_in).u64(self.thin).u64(self.proposal_tag())
    }
}

/// A fully canonical query identity. Construct via [`QueryKey::canonical`]
/// so the invariants (normalized conditions, sorted community) hold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryKey {
    /// Flow source.
    pub source: NodeId,
    /// Flow target (sink or sorted community).
    pub target: SharedTarget,
    /// Normalized (sorted, deduped, contradiction-free) conditions.
    pub conditions: Vec<FlowCondition>,
    /// Resolved chain configuration class.
    pub config: ConfigClass,
    /// Model fingerprint the key was built against.
    pub fingerprint: u64,
    /// Shard slot the key was resolved on: `0` for the global
    /// (unsharded) engine, `s + 1` for per-shard engines. Folded into
    /// both hashes so a shard engine's entries and the global engine's
    /// entries never collide even when their models fingerprint alike
    /// (a single-shard partition IS the full model).
    pub shard: u32,
}

impl QueryKey {
    /// Canonicalizes a raw query. Fails with the offending `(u, v)` pair
    /// mapped to [`FlowError::GraphInconsistency`] when the condition
    /// set is directly contradictory — the planner surfaces this as a
    /// typed per-query failure *before* any sampling happens.
    pub fn canonical(
        source: NodeId,
        target: &SharedTarget,
        conditions: &[FlowCondition],
        config: &McmcConfig,
        icm: &Icm,
    ) -> FlowResult<Self> {
        let conditions =
            normalize_conditions(conditions).map_err(|(u, v)| FlowError::GraphInconsistency {
                detail: format!(
                    "contradictory flow conditions: {u}~>{v} both required and forbidden"
                ),
            })?;
        let target = match target {
            SharedTarget::Sink(s) => SharedTarget::Sink(*s),
            SharedTarget::Community(members) => {
                let mut sorted = members.clone();
                sorted.sort_by_key(|v| v.0);
                sorted.dedup();
                SharedTarget::Community(sorted)
            }
        };
        Ok(QueryKey {
            source,
            target,
            conditions,
            config: ConfigClass::of(config, icm.edge_count()),
            fingerprint: model_fingerprint(icm),
            shard: 0,
        })
    }

    /// The same key pinned to a shard slot (see [`QueryKey::shard`]).
    pub fn with_shard(mut self, shard: u32) -> Self {
        self.shard = shard;
        self
    }

    fn fold_common(&self, h: Fnv64) -> Fnv64 {
        let mut h = h.u64(u64::from(self.source.0)).u64(u64::from(self.shard));
        h = h.u64(self.conditions.len() as u64);
        for c in &self.conditions {
            h = h
                .u64(u64::from(c.source.0))
                .u64(u64::from(c.sink.0))
                .u64(u64::from(c.required));
        }
        self.config.fold(h).u64(self.fingerprint)
    }

    /// Full identity hash (cache index).
    pub fn hash64(&self) -> u64 {
        let mut h = self.fold_common(Fnv64::new().bytes(b"qk1"));
        h = match &self.target {
            SharedTarget::Sink(s) => h.u64(1).u64(u64::from(s.0)),
            SharedTarget::Community(members) => {
                let mut h = h.u64(2).u64(members.len() as u64);
                for v in members {
                    h = h.u64(u64::from(v.0));
                }
                h
            }
        };
        h.finish()
    }

    /// Target-independent chain identity: queries with equal chain keys
    /// ride one shared chain, and the engine derives the chain seed from
    /// this value, so a query's trajectory never depends on which batch
    /// it arrived in.
    pub fn chain_key(&self) -> u64 {
        self.fold_common(Fnv64::new().bytes(b"ck1")).finish()
    }

    /// Renders the key as one line of text (cache persistence).
    pub fn to_text(&self) -> String {
        let target = match &self.target {
            SharedTarget::Sink(s) => format!("sink:{}", s.0),
            SharedTarget::Community(members) => {
                let ids: Vec<String> = members.iter().map(|v| v.0.to_string()).collect();
                format!("comm:{}", ids.join(","))
            }
        };
        let conditions = if self.conditions.is_empty() {
            "-".to_owned()
        } else {
            self.conditions
                .iter()
                .map(|c| {
                    format!(
                        "{}>{}{}",
                        c.source.0,
                        c.sink.0,
                        if c.required { '+' } else { '-' }
                    )
                })
                .collect::<Vec<_>>()
                .join(";")
        };
        format!(
            "src={} tgt={} cond={} burn={} thin={} prop={} fp={} shard={}",
            self.source.0,
            target,
            conditions,
            self.config.burn_in,
            self.config.thin,
            self.config.proposal_tag(),
            self.fingerprint,
            self.shard,
        )
    }

    /// Parses [`QueryKey::to_text`] output.
    pub fn from_text(text: &str) -> FlowResult<Self> {
        let corrupt = |detail: String| FlowError::Checkpoint { detail };
        let mut fields: Vec<(&str, &str)> = Vec::new();
        for part in text.split_whitespace() {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| corrupt(format!("malformed key field `{part}`")))?;
            fields.push((k, v));
        }
        let get = |name: &str| -> FlowResult<&str> {
            fields
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| corrupt(format!("missing key field `{name}`")))
        };
        let parse_u64 = |name: &str, v: &str| -> FlowResult<u64> {
            v.parse::<u64>()
                .map_err(|_| corrupt(format!("bad integer in `{name}`: `{v}`")))
        };
        let parse_u32 = |name: &str, v: &str| -> FlowResult<u32> {
            v.parse::<u32>()
                .map_err(|_| corrupt(format!("bad node id in `{name}`: `{v}`")))
        };

        let source = NodeId(parse_u32("src", get("src")?)?);
        let target_text = get("tgt")?;
        let target = if let Some(s) = target_text.strip_prefix("sink:") {
            SharedTarget::Sink(NodeId(parse_u32("tgt", s)?))
        } else if let Some(list) = target_text.strip_prefix("comm:") {
            let mut members = Vec::new();
            for id in list.split(',').filter(|s| !s.is_empty()) {
                members.push(NodeId(parse_u32("tgt", id)?));
            }
            SharedTarget::Community(members)
        } else {
            return Err(corrupt(format!("bad target `{target_text}`")));
        };
        let cond_text = get("cond")?;
        let mut conditions = Vec::new();
        if cond_text != "-" {
            for c in cond_text.split(';').filter(|s| !s.is_empty()) {
                let (body, required) = if let Some(b) = c.strip_suffix('+') {
                    (b, true)
                } else if let Some(b) = c.strip_suffix('-') {
                    (b, false)
                } else {
                    return Err(corrupt(format!("bad condition `{c}`")));
                };
                let (u, v) = body
                    .split_once('>')
                    .ok_or_else(|| corrupt(format!("bad condition `{c}`")))?;
                conditions.push(FlowCondition {
                    source: NodeId(parse_u32("cond", u)?),
                    sink: NodeId(parse_u32("cond", v)?),
                    required,
                });
            }
        }
        let proposal = match parse_u64("prop", get("prop")?)? {
            0 => ProposalKind::ResultingActivity,
            1 => ProposalKind::CurrentActivity,
            other => return Err(corrupt(format!("unknown proposal tag {other}"))),
        };
        // Lenient on a missing shard field (pre-v3 keys default to the
        // global slot); the cache header version gates wholesale format
        // changes, this keeps key parsing robust in isolation.
        let shard = match fields.iter().find(|(k, _)| *k == "shard") {
            Some((_, v)) => parse_u32("shard", v)?,
            None => 0,
        };
        Ok(QueryKey {
            source,
            target,
            conditions,
            config: ConfigClass {
                burn_in: parse_u64("burn", get("burn")?)?,
                thin: parse_u64("thin", get("thin")?)?,
                proposal,
            },
            fingerprint: parse_u64("fp", get("fp")?)?,
            shard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow_graph::graph::graph_from_edges;

    fn icm() -> Icm {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        Icm::new(g, vec![0.7, 0.4, 0.5, 0.6])
    }

    fn key(conditions: &[FlowCondition]) -> QueryKey {
        QueryKey::canonical(
            NodeId(0),
            &SharedTarget::Sink(NodeId(3)),
            conditions,
            &McmcConfig::default(),
            &icm(),
        )
        .unwrap()
    }

    #[test]
    fn permuted_and_duplicated_conditions_collide() {
        let a = key(&[
            FlowCondition::requires(NodeId(0), NodeId(1)),
            FlowCondition::forbids(NodeId(2), NodeId(3)),
        ]);
        let b = key(&[
            FlowCondition::forbids(NodeId(2), NodeId(3)),
            FlowCondition::requires(NodeId(0), NodeId(1)),
            FlowCondition::requires(NodeId(0), NodeId(1)),
        ]);
        assert_eq!(a, b);
        assert_eq!(a.hash64(), b.hash64());
        assert_eq!(a.chain_key(), b.chain_key());
    }

    #[test]
    fn contradictory_conditions_are_rejected() {
        let err = QueryKey::canonical(
            NodeId(0),
            &SharedTarget::Sink(NodeId(3)),
            &[
                FlowCondition::requires(NodeId(1), NodeId(2)),
                FlowCondition::forbids(NodeId(1), NodeId(2)),
            ],
            &McmcConfig::default(),
            &icm(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            flow_core::FlowError::GraphInconsistency { .. }
        ));
    }

    #[test]
    fn chain_key_ignores_target_but_hash_does_not() {
        let model = icm();
        let cfg = McmcConfig::default();
        let a = QueryKey::canonical(NodeId(0), &SharedTarget::Sink(NodeId(3)), &[], &cfg, &model)
            .unwrap();
        let b = QueryKey::canonical(NodeId(0), &SharedTarget::Sink(NodeId(1)), &[], &cfg, &model)
            .unwrap();
        assert_eq!(a.chain_key(), b.chain_key());
        assert_ne!(a.hash64(), b.hash64());
    }

    #[test]
    fn fingerprint_tracks_probability_bits() {
        let g1 = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let g2 = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let a = Icm::new(g1, vec![0.5, 0.5]);
        let b = Icm::new(g2, vec![0.5, 0.5000000001]);
        assert_ne!(model_fingerprint(&a), model_fingerprint(&b));
    }

    #[test]
    fn key_text_round_trips() {
        let model = icm();
        let cfg = McmcConfig::default();
        let keys = [
            key(&[FlowCondition::requires(NodeId(0), NodeId(1))]),
            key(&[]),
            QueryKey::canonical(
                NodeId(1),
                &SharedTarget::Community(vec![NodeId(3), NodeId(2), NodeId(2)]),
                &[FlowCondition::forbids(NodeId(0), NodeId(2))],
                &cfg,
                &model,
            )
            .unwrap(),
        ];
        for k in &keys {
            let parsed = QueryKey::from_text(&k.to_text()).unwrap();
            assert_eq!(&parsed, k);
            assert_eq!(parsed.hash64(), k.hash64());
        }
        assert!(QueryKey::from_text("src=0 tgt=bogus").is_err());
    }

    #[test]
    fn shard_slot_separates_identities_and_round_trips() {
        let base = key(&[]);
        let sharded = base.clone().with_shard(3);
        assert_ne!(base.hash64(), sharded.hash64());
        assert_ne!(base.chain_key(), sharded.chain_key());
        let parsed = QueryKey::from_text(&sharded.to_text()).unwrap();
        assert_eq!(parsed, sharded);
        assert_eq!(parsed.shard, 3);
        // Pre-v3 text without the field defaults to the global slot.
        let legacy =
            QueryKey::from_text("src=0 tgt=sink:3 cond=- burn=8 thin=4 prop=0 fp=77").unwrap();
        assert_eq!(legacy.shard, 0);
    }

    #[test]
    fn community_members_are_sorted_and_deduped() {
        let model = icm();
        let k = QueryKey::canonical(
            NodeId(0),
            &SharedTarget::Community(vec![NodeId(3), NodeId(1), NodeId(3)]),
            &[],
            &McmcConfig::default(),
            &model,
        )
        .unwrap();
        assert_eq!(
            k.target,
            SharedTarget::Community(vec![NodeId(1), NodeId(3)])
        );
    }
}
