//! The bounded executor: a fixed worker pool with explicit backpressure,
//! admission control, and per-plan retry.
//!
//! Serving must fail *predictably* under load, so admission is decided
//! before any thread runs: the whole batch is submitted to a bounded
//! queue first, and every plan beyond `queue_capacity` — or beyond the
//! configured [`ExecutorConfig::admission_step_budget`] of estimated
//! chain steps — is shed up front with a typed
//! [`FlowError::Overloaded`] carrying a deterministic retry-after hint.
//! That makes backpressure deterministic: which plans get `Rejected`
//! depends only on batch order, capacity, and estimated cost, never on
//! worker timing.
//!
//! Workers retry *transient* plan failures (stalled chains, I/O
//! hiccups; see [`flow_core::Transience`]) with a deterministic capped
//! exponential backoff ([`RetryPolicy`]); permanent errors surface
//! immediately. Each retry emits a `serve.retry` event, each shed plan
//! a `serve.shed` event.
//!
//! Workers are scoped threads. Each one re-installs the submitting
//! thread's `flow-obs` recorder (via [`flow_obs::current_recorder`]),
//! so telemetry from worker threads lands in the caller's sink — a
//! test's `MemorySink` included. The queue depth is exported as the
//! `serve.queue.depth` gauge, and every plan runs under a
//! `serve.plan` span with start/finish events carrying the plan id.

use crate::plan::Plan;
use flow_core::{fault, FlowError, FlowResult};
use flow_icm::Icm;
use flow_mcmc::SharedChainOutcome;
use flow_obs::{ScopedRecorder, TraceContext};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Assumed chain-step throughput per worker, used only to turn a shed
/// plan's queued-steps backlog into a millisecond retry-after hint.
/// Deliberately a constant: the hint must be a pure function of the
/// batch, not of measured machine speed.
const ASSUMED_STEPS_PER_MS: u64 = 500;

/// Deterministic retry policy for transient plan failures.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per plan, including the first (floored at 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff cap, in milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 2,
            max_backoff_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// Backoff before retry number `attempt` (1-based): capped
    /// exponential, no jitter — retries must not perturb determinism.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        (self.base_backoff_ms << shift).min(self.max_backoff_ms)
    }
}

/// Worker-pool shape and admission policy.
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Fixed worker-thread count (floored at 1).
    pub workers: usize,
    /// Maximum plans admitted per batch; the rest are rejected.
    pub queue_capacity: usize,
    /// Maximum estimated chain steps admitted per batch; plans beyond
    /// it are shed with [`FlowError::Overloaded`]. `0` = unlimited.
    pub admission_step_budget: u64,
    /// Retry policy for transient plan failures.
    pub retry: RetryPolicy,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: 4,
            queue_capacity: 256,
            admission_step_budget: 0,
            retry: RetryPolicy::default(),
        }
    }
}

/// What happened to one submitted plan.
#[derive(Clone, Debug)]
pub enum PlanStatus {
    /// The plan ran; its chain outcome (possibly degraded) is attached.
    Completed(SharedChainOutcome),
    /// Admission shed the plan (queue full or step budget exceeded);
    /// it never ran. Always [`FlowError::Overloaded`] with a
    /// deterministic retry-after hint.
    Rejected(FlowError),
    /// The plan ran and failed with a hard error (after any retries).
    Failed(FlowError),
}

/// Executor-level counters for one batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecReport {
    /// Transient-failure retries performed across all workers.
    pub retries: u64,
    /// Plans shed by admission control (step budget or saturation),
    /// not counting plain queue-capacity rejections.
    pub shed: u64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic retry-after hint for a shed plan: how long the queued
/// backlog takes to drain at the assumed per-worker step rate.
fn retry_after_hint(queued_steps: u64, workers: usize) -> u64 {
    let rate = ASSUMED_STEPS_PER_MS * workers.max(1) as u64;
    (queued_steps / rate).max(1)
}

fn overloaded(detail: String, queued_steps: u64, workers: usize) -> FlowError {
    FlowError::Overloaded {
        detail,
        retry_after_ms: retry_after_hint(queued_steps, workers),
    }
}

/// Runs a batch of plans on the worker pool, returning per-plan
/// statuses (indexed by plan id, always complete) plus executor
/// counters.
pub fn run_plans_report(
    icm: &Icm,
    plans: &[Plan],
    config: &ExecutorConfig,
) -> (Vec<PlanStatus>, ExecReport) {
    let mut results: Vec<Option<PlanStatus>> = vec![None; plans.len()];
    let mut report = ExecReport::default();

    // Admission first: deterministic backpressure. Plans are admitted
    // in batch order while both the queue capacity and the step budget
    // hold; everything else is shed with a typed `Overloaded`.
    let budget = config.admission_step_budget;
    let mut queued_steps: u64 = 0;
    let mut queue: VecDeque<&Plan> = VecDeque::new();
    for plan in plans {
        // Admission decisions (shed/reject events) record under the
        // plan's primary trace.
        let _t = TraceContext::enter(plan.trace());
        let cost = plan.estimated_steps();
        // The fault harness can saturate admission wholesale, modelling
        // a pool that cannot drain.
        let saturated = fault::fires("serve.queue_saturate");
        let over_budget =
            budget > 0 && !queue.is_empty() && queued_steps.saturating_add(cost) > budget;
        if queue.len() >= config.queue_capacity {
            flow_obs::counter("serve.queue.rejected", 1);
            flow_obs::event(|| {
                flow_obs::Event::new("serve.plan.rejected").u64("plan", plan.id as u64)
            });
            results[plan.id] = Some(PlanStatus::Rejected(overloaded(
                format!("submission queue full ({} plans)", config.queue_capacity),
                queued_steps,
                config.workers,
            )));
        } else if saturated || over_budget {
            report.shed += 1;
            flow_obs::counter("serve.shed", 1);
            flow_obs::event(|| {
                flow_obs::Event::new("serve.shed")
                    .u64("plan", plan.id as u64)
                    .u64("estimated_steps", cost)
                    .u64("queued_steps", queued_steps)
                    .u64("budget", budget)
            });
            results[plan.id] = Some(PlanStatus::Rejected(overloaded(
                if saturated {
                    "admission saturated (injected)".to_string()
                } else {
                    format!(
                        "admission step budget {budget} exceeded: {queued_steps} queued + {cost} estimated"
                    )
                },
                queued_steps,
                config.workers,
            )));
        } else {
            queued_steps = queued_steps.saturating_add(cost);
            queue.push_back(plan);
        }
    }
    flow_obs::gauge("serve.queue.depth", queue.len() as f64);

    let workers = config.workers.max(1).min(queue.len().max(1));
    let retry = config.retry;
    let retries = AtomicU64::new(0);
    let queue = Mutex::new(queue);
    let slots = Mutex::new(&mut results);
    let recorder = flow_obs::current_recorder();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let slots = &slots;
            let retries = &retries;
            let recorder = recorder.clone();
            scope.spawn(move || {
                let _guard = recorder.map(ScopedRecorder::install);
                loop {
                    let (plan, depth) = {
                        let mut q = lock(queue);
                        let plan = q.pop_front();
                        (plan, q.len())
                    };
                    let Some(plan) = plan else { break };
                    flow_obs::gauge("serve.queue.depth", depth as f64);
                    // Everything this plan does — start/finish markers,
                    // retries, chain spans inside shared_chain_flows —
                    // records under its primary trace, which also gives
                    // the deterministic JSONL sink a single-writer
                    // stream per plan.
                    let _t = TraceContext::enter(plan.trace());
                    flow_obs::event(|| {
                        flow_obs::Event::new("serve.plan.start").u64("plan", plan.id as u64)
                    });
                    let status = execute_with_retry(icm, plan, &retry, retries);
                    flow_obs::event(|| {
                        let e =
                            flow_obs::Event::new("serve.plan.finish").u64("plan", plan.id as u64);
                        match &status {
                            PlanStatus::Completed(out) => e
                                .u64("samples", out.samples_done as u64)
                                .u64("steps", out.steps)
                                .u64("degraded", out.degradation.len() as u64),
                            PlanStatus::Failed(err) => e.str("error", err.to_string()),
                            PlanStatus::Rejected(err) => e.str("error", err.to_string()),
                        }
                    });
                    let mut s = lock(slots);
                    if let Some(slot) = s.get_mut(plan.id) {
                        *slot = Some(status);
                    }
                }
            });
        }
    });

    report.retries = retries.load(Ordering::Relaxed);
    let statuses = results
        .into_iter()
        .map(|r| {
            r.unwrap_or(PlanStatus::Failed(FlowError::Io {
                detail: "executor dropped a plan without recording a status".into(),
            }))
        })
        .collect();
    (statuses, report)
}

/// Runs one plan, retrying transient failures per the policy. The
/// `serve.worker_stall` fault point injects a stalled-chain error
/// before execution, exercising exactly this retry path.
fn execute_with_retry(
    icm: &Icm,
    plan: &Plan,
    retry: &RetryPolicy,
    retries: &AtomicU64,
) -> PlanStatus {
    let max_attempts = retry.max_attempts.max(1);
    let mut attempt = 1u32;
    loop {
        let result = {
            let _span = flow_obs::span("serve.plan");
            if fault::fires("serve.worker_stall") {
                Err(FlowError::ChainStalled {
                    chain: plan.id,
                    steps: 0,
                    acceptance_rate: 0.0,
                })
            } else {
                plan.execute(icm)
            }
        };
        match result {
            Ok(outcome) => return PlanStatus::Completed(outcome),
            Err(e) if e.is_transient() && attempt < max_attempts => {
                let backoff = retry.backoff_ms(attempt);
                retries.fetch_add(1, Ordering::Relaxed);
                flow_obs::counter("serve.retry", 1);
                flow_obs::event(|| {
                    flow_obs::Event::new("serve.retry")
                        .u64("plan", plan.id as u64)
                        .u64("attempt", u64::from(attempt))
                        .u64("backoff_ms", backoff)
                        .str("error", e.to_string())
                });
                // The backoff is wall-clock politeness, not identity:
                // the re-executed plan is a pure function of its seed,
                // so sleeping never perturbs results.
                std::thread::sleep(Duration::from_millis(backoff));
                attempt += 1;
            }
            Err(e) => return PlanStatus::Failed(e),
        }
    }
}

/// Runs a batch of plans on the worker pool. The returned vector is
/// indexed by plan id and always complete: every plan is `Completed`,
/// `Rejected`, or `Failed`.
pub fn run_plans(icm: &Icm, plans: &[Plan], config: &ExecutorConfig) -> Vec<PlanStatus> {
    run_plans_report(icm, plans, config).0
}

/// Convenience: run plans and return a typed result per plan, mapping
/// `Rejected` to its carried [`FlowError::Overloaded`] for callers that
/// do not model backpressure separately.
pub fn run_plans_strict(
    icm: &Icm,
    plans: &[Plan],
    config: &ExecutorConfig,
) -> Vec<FlowResult<SharedChainOutcome>> {
    run_plans(icm, plans, config)
        .into_iter()
        .map(|s| match s {
            PlanStatus::Completed(out) => Ok(out),
            PlanStatus::Failed(e) | PlanStatus::Rejected(e) => Err(e),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ServeCache;
    use crate::plan::{plan_batch, FlowQuery, PlannerConfig};
    use flow_graph::graph::graph_from_edges;
    use flow_graph::NodeId;
    use flow_mcmc::McmcConfig;
    use flow_obs::MemorySink;
    use std::sync::Arc;

    fn icm() -> Icm {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        Icm::new(g, vec![0.7, 0.4, 0.5, 0.6, 0.3])
    }

    fn cfg() -> PlannerConfig {
        PlannerConfig {
            mcmc: McmcConfig {
                samples: 100,
                ..Default::default()
            },
            default_tolerance: 0.5,
            engine_seed: 5,
            max_samples: 10_000,
            shard: 0,
        }
    }

    #[test]
    fn overflow_plans_are_rejected_deterministically() {
        let model = icm();
        let queries: Vec<FlowQuery> = (0..4)
            .map(|s| FlowQuery::flow(NodeId(s), NodeId(4)))
            .collect();
        let batch = plan_batch(&model, &mut ServeCache::new(1 << 20), &cfg(), &queries);
        assert_eq!(batch.plans.len(), 4);
        let exec = ExecutorConfig {
            workers: 2,
            queue_capacity: 2,
            ..Default::default()
        };
        for _ in 0..3 {
            let statuses = run_plans(&model, &batch.plans, &exec);
            assert!(matches!(statuses[0], PlanStatus::Completed(_)));
            assert!(matches!(statuses[1], PlanStatus::Completed(_)));
            assert!(matches!(
                statuses[2],
                PlanStatus::Rejected(FlowError::Overloaded { .. })
            ));
            assert!(matches!(
                statuses[3],
                PlanStatus::Rejected(FlowError::Overloaded { .. })
            ));
        }
    }

    #[test]
    fn step_budget_sheds_excess_plans_with_retry_hint() {
        let model = icm();
        let queries: Vec<FlowQuery> = (0..3)
            .map(|s| FlowQuery::flow(NodeId(s), NodeId(4)))
            .collect();
        let batch = plan_batch(&model, &mut ServeCache::new(1 << 20), &cfg(), &queries);
        let per_plan = batch.plans[0].estimated_steps();
        assert!(per_plan > 0);
        // Budget covers exactly one plan; the first is always admitted,
        // the other two are shed.
        let exec = ExecutorConfig {
            workers: 2,
            admission_step_budget: per_plan,
            ..Default::default()
        };
        let (statuses, report) = run_plans_report(&model, &batch.plans, &exec);
        assert!(matches!(statuses[0], PlanStatus::Completed(_)));
        for s in &statuses[1..] {
            match s {
                PlanStatus::Rejected(FlowError::Overloaded { retry_after_ms, .. }) => {
                    assert!(*retry_after_ms >= 1);
                }
                other => panic!("expected Overloaded shed, got {other:?}"),
            }
        }
        assert_eq!(report.shed, 2);
    }

    #[test]
    fn unlimited_budget_admits_everything() {
        let model = icm();
        let queries: Vec<FlowQuery> = (0..3)
            .map(|s| FlowQuery::flow(NodeId(s), NodeId(4)))
            .collect();
        let batch = plan_batch(&model, &mut ServeCache::new(1 << 20), &cfg(), &queries);
        let (statuses, report) = run_plans_report(&model, &batch.plans, &ExecutorConfig::default());
        assert!(statuses
            .iter()
            .all(|s| matches!(s, PlanStatus::Completed(_))));
        assert_eq!(report.shed, 0);
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        let retry = RetryPolicy {
            max_attempts: 6,
            base_backoff_ms: 4,
            max_backoff_ms: 20,
        };
        let schedule: Vec<u64> = (1..=5).map(|a| retry.backoff_ms(a)).collect();
        assert_eq!(schedule, vec![4, 8, 16, 20, 20]);
    }

    #[test]
    fn worker_threads_report_into_the_callers_sink() {
        let model = icm();
        let queries = vec![
            FlowQuery::flow(NodeId(0), NodeId(3)),
            FlowQuery::flow(NodeId(1), NodeId(4)),
        ];
        let batch = plan_batch(&model, &mut ServeCache::new(1 << 20), &cfg(), &queries);
        let sink = Arc::new(MemorySink::new());
        {
            let _r = ScopedRecorder::install(sink.clone());
            let statuses = run_plans(&model, &batch.plans, &ExecutorConfig::default());
            assert!(statuses
                .iter()
                .all(|s| matches!(s, PlanStatus::Completed(_))));
        }
        assert!(
            sink.counter_value("sampler.steps") > 0,
            "worker sampling must reach the caller's recorder"
        );
        assert_eq!(sink.events_named("serve.plan.start").len(), 2);
        assert_eq!(sink.events_named("serve.plan.finish").len(), 2);
    }
}
