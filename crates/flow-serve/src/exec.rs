//! The bounded executor: a fixed worker pool with explicit backpressure.
//!
//! Serving must fail *predictably* under load, so admission is decided
//! before any thread runs: the whole batch is submitted to a bounded
//! queue first, and every plan beyond `queue_capacity` is rejected
//! up front. That makes backpressure deterministic — which plans get
//! `Rejected` depends only on batch order and capacity, never on worker
//! timing — and the engine maps rejections to typed
//! `QueryOutcome::Rejected { queue_full: true }` responses.
//!
//! Workers are scoped threads. Each one re-installs the submitting
//! thread's `flow-obs` recorder (via [`flow_obs::current_recorder`]),
//! so telemetry from worker threads lands in the caller's sink — a
//! test's `MemorySink` included. The queue depth is exported as the
//! `serve.queue.depth` gauge, and every plan runs under a
//! `serve.plan` span with start/finish events carrying the plan id.

use crate::plan::Plan;
use flow_core::{FlowError, FlowResult};
use flow_icm::Icm;
use flow_mcmc::SharedChainOutcome;
use flow_obs::ScopedRecorder;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Worker-pool shape.
#[derive(Clone, Copy, Debug)]
pub struct ExecutorConfig {
    /// Fixed worker-thread count (floored at 1).
    pub workers: usize,
    /// Maximum plans admitted per batch; the rest are rejected.
    pub queue_capacity: usize,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            workers: 4,
            queue_capacity: 256,
        }
    }
}

/// What happened to one submitted plan.
#[derive(Clone, Debug)]
pub enum PlanStatus {
    /// The plan ran; its chain outcome (possibly degraded) is attached.
    Completed(SharedChainOutcome),
    /// The submission queue was full; the plan never ran.
    Rejected,
    /// The plan ran and failed with a hard error.
    Failed(FlowError),
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs a batch of plans on the worker pool. The returned vector is
/// indexed by plan id and always complete: every plan is `Completed`,
/// `Rejected`, or `Failed`.
pub fn run_plans(icm: &Icm, plans: &[Plan], config: &ExecutorConfig) -> Vec<PlanStatus> {
    let mut results: Vec<Option<PlanStatus>> = vec![None; plans.len()];

    // Admission first: deterministic backpressure.
    let mut queue: VecDeque<&Plan> = VecDeque::new();
    for plan in plans {
        if queue.len() < config.queue_capacity {
            queue.push_back(plan);
        } else {
            flow_obs::counter("serve.queue.rejected", 1);
            flow_obs::event(|| {
                flow_obs::Event::new("serve.plan.rejected").u64("plan", plan.id as u64)
            });
            results[plan.id] = Some(PlanStatus::Rejected);
        }
    }
    flow_obs::gauge("serve.queue.depth", queue.len() as f64);

    let workers = config.workers.max(1).min(queue.len().max(1));
    let queue = Mutex::new(queue);
    let slots = Mutex::new(&mut results);
    let recorder = flow_obs::current_recorder();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let slots = &slots;
            let recorder = recorder.clone();
            scope.spawn(move || {
                let _guard = recorder.map(ScopedRecorder::install);
                loop {
                    let (plan, depth) = {
                        let mut q = lock(queue);
                        let plan = q.pop_front();
                        (plan, q.len())
                    };
                    let Some(plan) = plan else { break };
                    flow_obs::gauge("serve.queue.depth", depth as f64);
                    flow_obs::event(|| {
                        flow_obs::Event::new("serve.plan.start").u64("plan", plan.id as u64)
                    });
                    let status = {
                        let _span = flow_obs::span("serve.plan");
                        match plan.execute(icm) {
                            Ok(outcome) => PlanStatus::Completed(outcome),
                            Err(e) => PlanStatus::Failed(e),
                        }
                    };
                    flow_obs::event(|| {
                        let e =
                            flow_obs::Event::new("serve.plan.finish").u64("plan", plan.id as u64);
                        match &status {
                            PlanStatus::Completed(out) => e
                                .u64("samples", out.samples_done as u64)
                                .u64("steps", out.steps)
                                .u64("degraded", out.degradation.len() as u64),
                            PlanStatus::Failed(err) => e.str("error", err.to_string()),
                            PlanStatus::Rejected => e,
                        }
                    });
                    let mut s = lock(slots);
                    if let Some(slot) = s.get_mut(plan.id) {
                        *slot = Some(status);
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| {
            r.unwrap_or(PlanStatus::Failed(FlowError::Io {
                detail: "executor dropped a plan without recording a status".into(),
            }))
        })
        .collect()
}

/// Convenience: run plans and return a typed result per plan, mapping
/// `Rejected` to `Err(BudgetExhausted)` for callers that do not model
/// backpressure separately.
pub fn run_plans_strict(
    icm: &Icm,
    plans: &[Plan],
    config: &ExecutorConfig,
) -> Vec<FlowResult<SharedChainOutcome>> {
    run_plans(icm, plans, config)
        .into_iter()
        .map(|s| match s {
            PlanStatus::Completed(out) => Ok(out),
            PlanStatus::Failed(e) => Err(e),
            PlanStatus::Rejected => Err(FlowError::BudgetExhausted {
                detail: "submission queue full".into(),
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ServeCache;
    use crate::plan::{plan_batch, FlowQuery, PlannerConfig};
    use flow_graph::graph::graph_from_edges;
    use flow_graph::NodeId;
    use flow_mcmc::McmcConfig;
    use flow_obs::MemorySink;
    use std::sync::Arc;

    fn icm() -> Icm {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        Icm::new(g, vec![0.7, 0.4, 0.5, 0.6, 0.3])
    }

    fn cfg() -> PlannerConfig {
        PlannerConfig {
            mcmc: McmcConfig {
                samples: 100,
                ..Default::default()
            },
            default_tolerance: 0.5,
            engine_seed: 5,
            max_samples: 10_000,
        }
    }

    #[test]
    fn overflow_plans_are_rejected_deterministically() {
        let model = icm();
        let queries: Vec<FlowQuery> = (0..4)
            .map(|s| FlowQuery::flow(NodeId(s), NodeId(4)))
            .collect();
        let batch = plan_batch(&model, &mut ServeCache::new(1 << 20), &cfg(), &queries);
        assert_eq!(batch.plans.len(), 4);
        let exec = ExecutorConfig {
            workers: 2,
            queue_capacity: 2,
        };
        for _ in 0..3 {
            let statuses = run_plans(&model, &batch.plans, &exec);
            assert!(matches!(statuses[0], PlanStatus::Completed(_)));
            assert!(matches!(statuses[1], PlanStatus::Completed(_)));
            assert!(matches!(statuses[2], PlanStatus::Rejected));
            assert!(matches!(statuses[3], PlanStatus::Rejected));
        }
    }

    #[test]
    fn worker_threads_report_into_the_callers_sink() {
        let model = icm();
        let queries = vec![
            FlowQuery::flow(NodeId(0), NodeId(3)),
            FlowQuery::flow(NodeId(1), NodeId(4)),
        ];
        let batch = plan_batch(&model, &mut ServeCache::new(1 << 20), &cfg(), &queries);
        let sink = Arc::new(MemorySink::new());
        {
            let _r = ScopedRecorder::install(sink.clone());
            let statuses = run_plans(&model, &batch.plans, &ExecutorConfig::default());
            assert!(statuses
                .iter()
                .all(|s| matches!(s, PlanStatus::Completed(_))));
        }
        assert!(
            sink.counter_value("sampler.steps") > 0,
            "worker sampling must reach the caller's recorder"
        );
        assert_eq!(sink.events_named("serve.plan.start").len(), 2);
        assert_eq!(sink.events_named("serve.plan.finish").len(), 2);
    }
}
