//! The `repro serve` query-file format: JSONL, one object per line.
//!
//! ```text
//! # comments and blank lines are skipped
//! {"model": {"nodes": 60, "edges": 180, "seed": 7}}
//! {"source": 0, "sink": 5}
//! {"source": 0, "sink": 9, "tolerance": 0.05}
//! {"source": 3, "community": [7, 8, 9], "conditions": [[0, 5, true]]}
//! {"source": 1, "sink": 4, "max_steps": 20000, "deadline_ms": 250}
//! ```
//!
//! The optional `model` line (at most one, anywhere) describes the
//! synthetic ICM to serve against; without it the caller must supply a
//! model. Every other line is a query. Parsing is strict and typed:
//! malformed lines become [`FlowError::Parse`] with the 1-based line
//! number, so a bad query file fails fast instead of serving half a
//! batch.
//!
//! Deserialization is hand-written over the vendored value-model serde
//! (its derive requires every field present; queries here are mostly
//! optional fields).

use crate::plan::FlowQuery;
use flow_core::{FlowError, FlowResult};
use flow_graph::NodeId;
use flow_icm::FlowCondition;
use flow_mcmc::SharedTarget;
use serde::{Deserialize, Error as SerdeError, Value};

/// Synthetic-model description (the `model` line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelSpec {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Generation seed.
    pub seed: u64,
    /// Disjoint equal-size communities the nodes split into (each a
    /// separate weak component, so `--shards` routing has locality to
    /// exploit). `1` — the default — is a single random graph.
    pub communities: u32,
}

/// One raw query line, before validation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QuerySpec {
    /// Flow source node id.
    pub source: u32,
    /// Single-sink target (exclusive with `community`).
    pub sink: Option<u32>,
    /// Community target (exclusive with `sink`).
    pub community: Option<Vec<u32>>,
    /// Conditions as `[source, sink, required]` triples.
    pub conditions: Vec<(u32, u32, bool)>,
    /// Requested confidence half-width.
    pub tolerance: Option<f64>,
    /// Per-query chain-step budget.
    pub max_steps: Option<u64>,
    /// Per-query deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl QuerySpec {
    /// Validates and converts to an engine [`FlowQuery`].
    pub fn to_query(&self, line: usize) -> FlowResult<FlowQuery> {
        let target = match (&self.sink, &self.community) {
            (Some(s), None) => SharedTarget::Sink(NodeId(*s)),
            (None, Some(members)) if !members.is_empty() => {
                SharedTarget::Community(members.iter().map(|&v| NodeId(v)).collect())
            }
            (None, Some(_)) => {
                return Err(FlowError::Parse {
                    line,
                    detail: "community target must not be empty".into(),
                });
            }
            (Some(_), Some(_)) => {
                return Err(FlowError::Parse {
                    line,
                    detail: "query has both `sink` and `community`; pick one".into(),
                });
            }
            (None, None) => {
                return Err(FlowError::Parse {
                    line,
                    detail: "query needs a `sink` or a `community` target".into(),
                });
            }
        };
        if let Some(t) = self.tolerance {
            if !(t.is_finite() && t > 0.0) {
                return Err(FlowError::Parse {
                    line,
                    detail: format!("tolerance must be a positive finite number, got {t}"),
                });
            }
        }
        Ok(FlowQuery {
            source: NodeId(self.source),
            target,
            conditions: self
                .conditions
                .iter()
                .map(|&(u, v, required)| FlowCondition {
                    source: NodeId(u),
                    sink: NodeId(v),
                    required,
                })
                .collect(),
            tolerance: self.tolerance,
            max_steps: self.max_steps,
            deadline_ms: self.deadline_ms,
        })
    }
}

fn opt_field<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, SerdeError> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(inner) => T::from_value(inner)
            .map(Some)
            .map_err(|e| SerdeError(format!("field `{name}`: {}", e.0))),
    }
}

impl Deserialize for ModelSpec {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let communities: u32 = opt_field(v, "communities")?.unwrap_or(1);
        if communities == 0 {
            return Err(SerdeError("field `communities`: must be at least 1".into()));
        }
        Ok(ModelSpec {
            nodes: serde::field(v, "nodes")?,
            edges: serde::field(v, "edges")?,
            seed: opt_field(v, "seed")?.unwrap_or(0),
            communities,
        })
    }
}

impl Deserialize for QuerySpec {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let conditions = match v.get("conditions") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let Value::Array(triple) = item else {
                        return Err(SerdeError::msg(
                            "each condition must be a [source, sink, required] array",
                        ));
                    };
                    match triple.as_slice() {
                        [u, s, r] => out.push((
                            u32::from_value(u)?,
                            u32::from_value(s)?,
                            bool::from_value(r)?,
                        )),
                        _ => {
                            return Err(SerdeError::msg(
                                "each condition must have exactly 3 elements",
                            ));
                        }
                    }
                }
                out
            }
            Some(other) => {
                return Err(SerdeError(format!(
                    "field `conditions`: expected array, got {other:?}"
                )));
            }
        };
        Ok(QuerySpec {
            source: serde::field(v, "source")?,
            sink: opt_field(v, "sink")?,
            community: opt_field(v, "community")?,
            conditions,
            tolerance: opt_field(v, "tolerance")?,
            max_steps: opt_field(v, "max_steps")?,
            deadline_ms: opt_field(v, "deadline_ms")?,
        })
    }
}

/// One parsed line of a query file.
#[derive(Clone, Debug)]
enum SpecLine {
    Model(ModelSpec),
    Query(QuerySpec),
}

impl Deserialize for SpecLine {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        match v.get("model") {
            Some(m) => ModelSpec::from_value(m).map(SpecLine::Model),
            None => QuerySpec::from_value(v).map(SpecLine::Query),
        }
    }
}

/// A fully parsed query file.
#[derive(Clone, Debug, Default)]
pub struct QueryFile {
    /// The model line, if present.
    pub model: Option<ModelSpec>,
    /// Queries with their 1-based source line numbers.
    pub queries: Vec<(usize, QuerySpec)>,
}

impl QueryFile {
    /// Validates every query into engine form.
    pub fn to_queries(&self) -> FlowResult<Vec<FlowQuery>> {
        self.queries
            .iter()
            .map(|(line, q)| q.to_query(*line))
            .collect()
    }
}

/// Parses query-file text. Blank lines and `#` comments are skipped;
/// anything else must parse, or the whole file is rejected with the
/// offending line number.
pub fn parse_query_file(text: &str) -> FlowResult<QueryFile> {
    let mut out = QueryFile::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed: SpecLine = serde_json::from_str(line).map_err(|e| FlowError::Parse {
            line: line_no,
            detail: e.to_string(),
        })?;
        match parsed {
            SpecLine::Model(m) => {
                if out.model.is_some() {
                    return Err(FlowError::Parse {
                        line: line_no,
                        detail: "duplicate `model` line".into(),
                    });
                }
                out.model = Some(m);
            }
            SpecLine::Query(q) => out.queries.push((line_no, q)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_model_queries_comments_and_blanks() {
        let text = "\
# serving smoke queries
{\"model\": {\"nodes\": 60, \"edges\": 180, \"seed\": 7}}

{\"source\": 0, \"sink\": 5}
{\"source\": 3, \"community\": [7, 8, 9], \"conditions\": [[0, 5, true], [1, 2, false]]}
{\"source\": 1, \"sink\": 4, \"tolerance\": 0.05, \"max_steps\": 20000, \"deadline_ms\": 250}
";
        let file = parse_query_file(text).unwrap();
        assert_eq!(
            file.model,
            Some(ModelSpec {
                nodes: 60,
                edges: 180,
                seed: 7,
                communities: 1
            })
        );
        assert_eq!(file.queries.len(), 3);
        let queries = file.to_queries().unwrap();
        assert_eq!(queries[0].source, NodeId(0));
        assert_eq!(
            queries[1].conditions,
            vec![
                FlowCondition::requires(NodeId(0), NodeId(5)),
                FlowCondition::forbids(NodeId(1), NodeId(2)),
            ]
        );
        assert_eq!(queries[2].tolerance, Some(0.05));
        assert_eq!(queries[2].deadline_ms, Some(250));
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let err = parse_query_file("{\"source\": 0, \"sink\": 1}\nnot json\n").unwrap_err();
        assert!(matches!(err, FlowError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn target_validation_is_typed() {
        let no_target = parse_query_file("{\"source\": 0}\n")
            .unwrap()
            .to_queries()
            .unwrap_err();
        assert!(matches!(no_target, FlowError::Parse { line: 1, .. }));
        let both = parse_query_file("{\"source\": 0, \"sink\": 1, \"community\": [2]}\n")
            .unwrap()
            .to_queries()
            .unwrap_err();
        assert!(matches!(both, FlowError::Parse { .. }));
        let bad_tol = parse_query_file("{\"source\": 0, \"sink\": 1, \"tolerance\": -0.5}\n")
            .unwrap()
            .to_queries()
            .unwrap_err();
        assert!(matches!(bad_tol, FlowError::Parse { .. }));
    }

    #[test]
    fn duplicate_model_line_is_rejected() {
        let text = "{\"model\":{\"nodes\":2,\"edges\":1}}\n{\"model\":{\"nodes\":3,\"edges\":2}}\n";
        let err = parse_query_file(text).unwrap_err();
        assert!(matches!(err, FlowError::Parse { line: 2, .. }));
    }
}
