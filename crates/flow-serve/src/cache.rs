//! Versioned, byte-budgeted LRU cache of flow estimates.
//!
//! Each entry stores the *sufficient statistics* of a finished chain —
//! hit counts, sample count, the chain seed, the model version, and a
//! resumable [`ChainCheckpoint`] — not just the point estimate. That
//! buys two serving behaviours:
//!
//! * **precision-aware admission**: a lookup is a usable hit only when
//!   the entry's confidence half-width meets the request's tolerance
//!   (the engine checks this; the cache just reports the entry), so a
//!   sloppy early answer never masquerades as a precise one;
//! * **warm refinement**: when the cached precision is insufficient,
//!   the checkpoint seeds a continuation of the *same* chain and the
//!   old counts pool with the new ones — cached work is never thrown
//!   away, it is a head start.
//!
//! Entries are keyed by [`QueryKey::hash64`] and verified against the
//! full key on every read, so hash collisions degrade to misses. The
//! model fingerprint inside the key versions the population: retraining
//! the ICM changes every key, and stale entries age out through the LRU
//! byte budget. Hit/miss/eviction counters mirror to `flow-obs`
//! (`serve.cache.*`) for the serving smoke test and dashboards.

use crate::key::QueryKey;
use flow_core::{FlowError, FlowResult};
use flow_mcmc::{ChainCheckpoint, TargetCounts};
use std::collections::HashMap;
use std::path::Path;

/// Magic first line of the persisted-cache text format.
const HEADER: &str = "flowserve-cache v1";

/// 95% confidence half-width of a Bernoulli frequency estimate from `n`
/// samples. The variance is floored at `1/n` so degenerate estimates
/// (all hits or none) still report honest, shrinking-with-`n` width;
/// `n = 0` is infinitely wide.
pub fn half_width(estimate: f64, n: u64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    let nf = n as f64;
    let variance = (estimate * (1.0 - estimate)).max(1.0 / nf);
    1.96 * (variance / nf).sqrt()
}

/// One cached chain result.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The canonical query this entry answers.
    pub key: QueryKey,
    /// Accumulated hit counts for the key's target.
    pub counts: TargetCounts,
    /// Retained samples behind `counts`.
    pub samples: u64,
    /// Chain seed the trajectory started from (refinements keep it).
    pub seed: u64,
    /// Model fingerprint at collection time (mirrors `key.fingerprint`;
    /// checked explicitly on read as a corruption guard).
    pub model_version: u64,
    /// Resumable chain state for warm refinement.
    pub checkpoint: ChainCheckpoint,
}

impl CacheEntry {
    /// The point estimate: all-targets hit frequency.
    pub fn estimate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.counts.all as f64 / self.samples as f64
        }
    }

    /// The entry's 95% confidence half-width.
    pub fn half_width(&self) -> f64 {
        half_width(self.estimate(), self.samples)
    }

    /// Approximate heap footprint, for the byte budget.
    pub fn approx_bytes(&self) -> usize {
        let key_bytes = 64
            + self.key.conditions.len() * 12
            + match &self.key.target {
                flow_mcmc::SharedTarget::Sink(_) => 8,
                flow_mcmc::SharedTarget::Community(m) => 8 + m.len() * 4,
            };
        let ckpt_bytes = 96 + self.checkpoint.active_edges.len() * 4;
        key_bytes + ckpt_bytes + 64
    }
}

#[derive(Debug)]
struct Slot {
    entry: CacheEntry,
    last_used: u64,
    bytes: usize,
}

/// The LRU estimate cache.
#[derive(Debug)]
pub struct ServeCache {
    slots: HashMap<u64, Slot>,
    byte_budget: usize,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ServeCache {
    /// An empty cache bounded by `byte_budget` approximate bytes.
    pub fn new(byte_budget: usize) -> Self {
        ServeCache {
            slots: HashMap::new(),
            byte_budget,
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up an entry, bumping its recency. A hash match whose full
    /// key or model version disagrees counts as a miss (collision or
    /// corruption), never as a wrong answer.
    pub fn lookup(&mut self, key: &QueryKey) -> Option<&CacheEntry> {
        self.tick += 1;
        let tick = self.tick;
        let hash = key.hash64();
        let found = match self.slots.get_mut(&hash) {
            Some(slot) if slot.entry.key == *key && slot.entry.model_version == key.fingerprint => {
                slot.last_used = tick;
                true
            }
            _ => false,
        };
        if found {
            self.hits += 1;
            flow_obs::counter("serve.cache.hit", 1);
            self.slots.get(&hash).map(|s| &s.entry)
        } else {
            self.misses += 1;
            flow_obs::counter("serve.cache.miss", 1);
            None
        }
    }

    /// Inserts (or replaces) an entry, then evicts least-recently-used
    /// entries until the byte budget holds. An entry larger than the
    /// whole budget is dropped immediately (counted as an eviction).
    pub fn insert(&mut self, entry: CacheEntry) {
        self.tick += 1;
        let hash = entry.key.hash64();
        let bytes = entry.approx_bytes();
        if let Some(old) = self.slots.remove(&hash) {
            self.bytes -= old.bytes;
        }
        if bytes > self.byte_budget {
            self.evictions += 1;
            flow_obs::counter("serve.cache.evict", 1);
            flow_obs::gauge("serve.cache.bytes", self.bytes as f64);
            return;
        }
        self.bytes += bytes;
        self.slots.insert(
            hash,
            Slot {
                entry,
                last_used: self.tick,
                bytes,
            },
        );
        while self.bytes > self.byte_budget {
            let victim = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(h, _)| *h);
            let Some(victim) = victim else { break };
            if let Some(gone) = self.slots.remove(&victim) {
                self.bytes -= gone.bytes;
                self.evictions += 1;
                flow_obs::counter("serve.cache.evict", 1);
            }
        }
        flow_obs::gauge("serve.cache.bytes", self.bytes as f64);
    }

    /// Cache hits since construction (or load).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since construction (or load).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions since construction (or load).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Persists every resident entry to `<dir>/cache.flowserve` in a
    /// line-based text format (entries sorted by key hash so the file
    /// is deterministic for a given population).
    pub fn save_to_dir(&self, dir: &Path) -> FlowResult<()> {
        std::fs::create_dir_all(dir)?;
        let mut hashes: Vec<u64> = self.slots.keys().copied().collect();
        hashes.sort_unstable();
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("entries={}\n", hashes.len()));
        for h in hashes {
            let Some(slot) = self.slots.get(&h) else {
                continue;
            };
            let e = &slot.entry;
            let ckpt = e.checkpoint.to_text();
            out.push_str(&format!("key={}\n", e.key.to_text()));
            out.push_str(&format!(
                "counts={} {} {}\n",
                e.counts.all, e.counts.any, e.counts.members
            ));
            out.push_str(&format!("samples={}\n", e.samples));
            out.push_str(&format!("seed={}\n", e.seed));
            out.push_str(&format!("ckpt_lines={}\n", ckpt.lines().count()));
            out.push_str(&ckpt);
            if !ckpt.ends_with('\n') {
                out.push('\n');
            }
        }
        std::fs::write(dir.join("cache.flowserve"), out)?;
        Ok(())
    }

    /// Loads a cache persisted by [`ServeCache::save_to_dir`]. A missing
    /// file yields an empty cache (cold start); a malformed file is a
    /// typed [`FlowError::Checkpoint`] error.
    pub fn load_from_dir(dir: &Path, byte_budget: usize) -> FlowResult<Self> {
        let path = dir.join("cache.flowserve");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(ServeCache::new(byte_budget));
            }
            Err(e) => return Err(e.into()),
        };
        Self::from_text(&text, byte_budget)
    }

    fn from_text(text: &str, byte_budget: usize) -> FlowResult<Self> {
        let corrupt = |detail: String| FlowError::Checkpoint { detail };
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(corrupt(format!("bad cache header; expected `{HEADER}`")));
        }
        let count_line = lines
            .next()
            .ok_or_else(|| corrupt("truncated cache: missing entry count".into()))?;
        let count: usize = count_line
            .strip_prefix("entries=")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt(format!("bad entry count line `{count_line}`")))?;
        let mut cache = ServeCache::new(byte_budget);
        let expect = |lines: &mut std::str::Lines<'_>, prefix: &str| -> FlowResult<String> {
            let line = lines
                .next()
                .ok_or_else(|| corrupt(format!("truncated cache: missing `{prefix}` line")))?;
            line.strip_prefix(prefix)
                .map(str::to_owned)
                .ok_or_else(|| corrupt(format!("expected `{prefix}...`, got `{line}`")))
        };
        for _ in 0..count {
            let key = QueryKey::from_text(&expect(&mut lines, "key=")?)?;
            let counts_text = expect(&mut lines, "counts=")?;
            let mut parts = counts_text.split_whitespace();
            let mut next_u64 = |what: &str| -> FlowResult<u64> {
                parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| corrupt(format!("bad counts field `{what}`")))
            };
            let counts = TargetCounts {
                all: next_u64("all")?,
                any: next_u64("any")?,
                members: next_u64("members")?,
            };
            let samples: u64 = expect(&mut lines, "samples=")?
                .parse()
                .map_err(|_| corrupt("bad samples".into()))?;
            let seed: u64 = expect(&mut lines, "seed=")?
                .parse()
                .map_err(|_| corrupt("bad seed".into()))?;
            let ckpt_lines: usize = expect(&mut lines, "ckpt_lines=")?
                .parse()
                .map_err(|_| corrupt("bad ckpt_lines".into()))?;
            let mut ckpt_text = String::new();
            for _ in 0..ckpt_lines {
                let line = lines
                    .next()
                    .ok_or_else(|| corrupt("truncated checkpoint in cache".into()))?;
                ckpt_text.push_str(line);
                ckpt_text.push('\n');
            }
            let checkpoint = ChainCheckpoint::from_text(&ckpt_text)?;
            let model_version = key.fingerprint;
            cache.insert(CacheEntry {
                key,
                counts,
                samples,
                seed,
                model_version,
                checkpoint,
            });
        }
        // Loading is population, not traffic: reset the flow counters.
        cache.hits = 0;
        cache.misses = 0;
        cache.evictions = 0;
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow_graph::graph::graph_from_edges;
    use flow_graph::NodeId;
    use flow_icm::Icm;
    use flow_mcmc::{McmcConfig, SharedTarget};

    fn icm() -> Icm {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        Icm::new(g, vec![0.7, 0.4, 0.5, 0.6])
    }

    fn entry_for(model: &Icm, sink: u32, samples: u64) -> CacheEntry {
        let key = QueryKey::canonical(
            NodeId(0),
            &SharedTarget::Sink(NodeId(sink)),
            &[],
            &McmcConfig::default(),
            model,
        )
        .unwrap();
        let fingerprint = key.fingerprint;
        CacheEntry {
            key,
            counts: TargetCounts {
                all: samples / 2,
                any: samples / 2,
                members: samples / 2,
            },
            samples,
            seed: 42,
            model_version: fingerprint,
            checkpoint: ChainCheckpoint {
                edge_count: model.edge_count(),
                active_edges: vec![0, 2],
                proposal: Default::default(),
                steps: 1000,
                accepted: 400,
                rng_state: [1, 2, 3, 4],
            },
        }
    }

    #[test]
    fn half_width_shrinks_and_floors() {
        assert!(half_width(0.5, 0).is_infinite());
        assert!(half_width(0.5, 100) > half_width(0.5, 10_000));
        // Degenerate estimates still report non-zero width.
        assert!(half_width(0.0, 1000) > 0.0);
        assert!(half_width(1.0, 1000) > 0.0);
    }

    #[test]
    fn lookup_hits_then_misses_on_other_key() {
        let model = icm();
        let mut cache = ServeCache::new(1 << 20);
        cache.insert(entry_for(&model, 3, 100));
        let hit_key = entry_for(&model, 3, 100).key;
        let miss_key = entry_for(&model, 1, 100).key;
        assert!(cache.lookup(&hit_key).is_some());
        assert!(cache.lookup(&miss_key).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_eviction_respects_byte_budget_and_recency() {
        let model = icm();
        let one = entry_for(&model, 1, 100).approx_bytes();
        // Room for two entries, not three.
        let mut cache = ServeCache::new(one * 2 + one / 2);
        cache.insert(entry_for(&model, 1, 100));
        cache.insert(entry_for(&model, 2, 100));
        // Touch sink-1 so sink-2 is the LRU victim.
        let k1 = entry_for(&model, 1, 100).key;
        assert!(cache.lookup(&k1).is_some());
        cache.insert(entry_for(&model, 3, 100));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(&k1).is_some(), "recently-used entry survives");
        let k2 = entry_for(&model, 2, 100).key;
        assert!(cache.lookup(&k2).is_none(), "LRU entry was evicted");
        assert!(cache.bytes() <= one * 2 + one / 2);
    }

    #[test]
    fn oversized_entry_is_refused() {
        let model = icm();
        let mut cache = ServeCache::new(8);
        cache.insert(entry_for(&model, 1, 100));
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn persistence_round_trips() {
        let model = icm();
        let dir = std::env::temp_dir().join(format!(
            "flow-serve-cache-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let mut cache = ServeCache::new(1 << 20);
        cache.insert(entry_for(&model, 1, 100));
        cache.insert(entry_for(&model, 3, 250));
        cache.save_to_dir(&dir).unwrap();
        let mut loaded = ServeCache::load_from_dir(&dir, 1 << 20).unwrap();
        assert_eq!(loaded.len(), 2);
        let k = entry_for(&model, 3, 250).key;
        let e = loaded.lookup(&k).unwrap();
        assert_eq!(e.samples, 250);
        assert_eq!(e.counts.all, 125);
        assert_eq!(e.checkpoint.rng_state, [1, 2, 3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_cache_dir_loads_empty() {
        let dir = std::env::temp_dir().join("flow-serve-no-such-cache-dir");
        let cache = ServeCache::load_from_dir(&dir, 1 << 20).unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn corrupt_cache_is_a_typed_error() {
        let err = ServeCache::from_text("not a cache\n", 1 << 20).unwrap_err();
        assert!(matches!(err, FlowError::Checkpoint { .. }));
    }
}
