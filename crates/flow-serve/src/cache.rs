//! Versioned, byte-budgeted LRU cache of flow estimates.
//!
//! Each entry stores the *sufficient statistics* of a finished chain —
//! hit counts, sample count, the chain seed, the model version, and a
//! resumable [`ChainCheckpoint`] — not just the point estimate. That
//! buys two serving behaviours:
//!
//! * **precision-aware admission**: a lookup is a usable hit only when
//!   the entry's confidence half-width meets the request's tolerance
//!   (the engine checks this; the cache just reports the entry), so a
//!   sloppy early answer never masquerades as a precise one;
//! * **warm refinement**: when the cached precision is insufficient,
//!   the checkpoint seeds a continuation of the *same* chain and the
//!   old counts pool with the new ones — cached work is never thrown
//!   away, it is a head start.
//!
//! Entries are keyed by [`QueryKey::hash64`] and verified against the
//! full key on every read, so hash collisions degrade to misses. The
//! model fingerprint inside the key versions the population: retraining
//! the ICM changes every key, and stale entries age out through the LRU
//! byte budget. Hit/miss/eviction counters mirror to `flow-obs`
//! (`serve.cache.*`) for the serving smoke test and dashboards.
//!
//! Persistence is crash-safe (DESIGN.md §12): every entry block carries
//! an FNV-1a checksum of its own text, files are written via
//! temp-file-plus-rename so a crash mid-write never leaves a half
//! cache, and a corrupt or torn block found on load is *quarantined* —
//! moved verbatim into a `quarantine/` sidecar directory next to the
//! cache file — while every intact block still loads. Corruption
//! therefore costs cache misses, never a panic and never a wrong
//! answer; a `serve.cache_quarantined` event records each incident.

use crate::key::{Fnv64, QueryKey};
use flow_core::{fault, FlowError, FlowResult};
use flow_mcmc::{ChainCheckpoint, TargetCounts};
use std::collections::HashMap;
use std::path::Path;

/// Magic first line of the persisted-cache text format, from the
/// workspace schema registry ([`flow_core::schema::SERVE_CACHE`]). v2
/// added per-entry `entry lines=<n> crc=<hex>` markers; v3 added the
/// shard field to the persisted key text. Files with any other header
/// (including older versions) are quarantined wholesale on load, which
/// costs a cold start, never a wrong answer.
fn header() -> String {
    flow_core::schema::SERVE_CACHE.line_header()
}

/// Marker written when checksumming is explicitly disabled
/// ([`ServeCache::save_to_dir_opts`]); such blocks load unverified.
const CRC_DISABLED: &str = "-";

/// 95% confidence half-width of a Bernoulli frequency estimate from `n`
/// samples. The variance is floored at `1/n` so degenerate estimates
/// (all hits or none) still report honest, shrinking-with-`n` width;
/// `n = 0` is infinitely wide.
pub fn half_width(estimate: f64, n: u64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    let nf = n as f64;
    let variance = (estimate * (1.0 - estimate)).max(1.0 / nf);
    1.96 * (variance / nf).sqrt()
}

/// One cached chain result.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The canonical query this entry answers.
    pub key: QueryKey,
    /// Accumulated hit counts for the key's target.
    pub counts: TargetCounts,
    /// Retained samples behind `counts`.
    pub samples: u64,
    /// Chain seed the trajectory started from (refinements keep it).
    pub seed: u64,
    /// Model fingerprint at collection time (mirrors `key.fingerprint`;
    /// checked explicitly on read as a corruption guard).
    pub model_version: u64,
    /// Resumable chain state for warm refinement.
    pub checkpoint: ChainCheckpoint,
}

impl CacheEntry {
    /// The point estimate: all-targets hit frequency.
    pub fn estimate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.counts.all as f64 / self.samples as f64
        }
    }

    /// The entry's 95% confidence half-width.
    pub fn half_width(&self) -> f64 {
        half_width(self.estimate(), self.samples)
    }

    /// Approximate heap footprint, for the byte budget.
    pub fn approx_bytes(&self) -> usize {
        let key_bytes = 64
            + self.key.conditions.len() * 12
            + match &self.key.target {
                flow_mcmc::SharedTarget::Sink(_) => 8,
                flow_mcmc::SharedTarget::Community(m) => 8 + m.len() * 4,
            };
        let ckpt_bytes = 96 + self.checkpoint.active_edges.len() * 4;
        key_bytes + ckpt_bytes + 64
    }
}

#[derive(Debug)]
struct Slot {
    entry: CacheEntry,
    last_used: u64,
    bytes: usize,
}

/// The LRU estimate cache.
#[derive(Debug)]
pub struct ServeCache {
    slots: HashMap<u64, Slot>,
    byte_budget: usize,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    quarantined: u64,
}

impl ServeCache {
    /// An empty cache bounded by `byte_budget` approximate bytes.
    pub fn new(byte_budget: usize) -> Self {
        ServeCache {
            slots: HashMap::new(),
            byte_budget,
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            quarantined: 0,
        }
    }

    /// Looks up an entry, bumping its recency. A hash match whose full
    /// key or model version disagrees counts as a miss (collision or
    /// corruption), never as a wrong answer.
    pub fn lookup(&mut self, key: &QueryKey) -> Option<&CacheEntry> {
        self.tick += 1;
        let tick = self.tick;
        let hash = key.hash64();
        let found = match self.slots.get_mut(&hash) {
            Some(slot) if slot.entry.key == *key && slot.entry.model_version == key.fingerprint => {
                slot.last_used = tick;
                true
            }
            _ => false,
        };
        // The lookup event inherits the planner's ambient TraceContext,
        // so a query's trace records whether it touched a warm entry.
        flow_obs::event(|| flow_obs::Event::new("serve.cache.lookup").bool("hit", found));
        if found {
            self.hits += 1;
            flow_obs::counter("serve.cache.hit", 1);
            self.slots.get(&hash).map(|s| &s.entry)
        } else {
            self.misses += 1;
            flow_obs::counter("serve.cache.miss", 1);
            None
        }
    }

    /// Inserts (or replaces) an entry, then evicts least-recently-used
    /// entries until the byte budget holds. An entry larger than the
    /// whole budget is dropped immediately (counted as an eviction).
    pub fn insert(&mut self, entry: CacheEntry) {
        self.tick += 1;
        let hash = entry.key.hash64();
        let bytes = entry.approx_bytes();
        if let Some(old) = self.slots.remove(&hash) {
            self.bytes -= old.bytes;
        }
        if bytes > self.byte_budget {
            self.evictions += 1;
            flow_obs::counter("serve.cache.evict", 1);
            flow_obs::gauge("serve.cache.bytes", self.bytes as f64);
            return;
        }
        self.bytes += bytes;
        self.slots.insert(
            hash,
            Slot {
                entry,
                last_used: self.tick,
                bytes,
            },
        );
        while self.bytes > self.byte_budget {
            let victim = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(h, _)| *h);
            let Some(victim) = victim else { break };
            if let Some(gone) = self.slots.remove(&victim) {
                self.bytes -= gone.bytes;
                self.evictions += 1;
                flow_obs::counter("serve.cache.evict", 1);
            }
        }
        flow_obs::gauge("serve.cache.bytes", self.bytes as f64);
    }

    /// Drops every entry whose model version differs from
    /// `fingerprint`, returning how many were removed.
    ///
    /// This is the hot-swap hook: when a new model version is installed
    /// (e.g. a `flow-stream` epoch seal), entries keyed on older
    /// fingerprints can never hit again — their keys embed the old
    /// version — so they are reclaimed eagerly instead of aging out
    /// through the LRU byte budget. Each sweep mirrors to `flow-obs` as
    /// `serve.cache.invalidate`.
    pub fn invalidate_stale(&mut self, fingerprint: u64) -> usize {
        let stale: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, s)| s.entry.model_version != fingerprint)
            .map(|(h, _)| *h)
            .collect();
        let removed = stale.len();
        for hash in stale {
            if let Some(gone) = self.slots.remove(&hash) {
                self.bytes -= gone.bytes;
            }
        }
        if removed > 0 {
            flow_obs::counter("serve.cache.invalidate", removed as u64);
            flow_obs::gauge("serve.cache.bytes", self.bytes as f64);
        }
        removed
    }

    /// Cache hits since construction (or load).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since construction (or load).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions since construction (or load).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Corrupt persisted blocks quarantined by the load that built this
    /// cache (0 for caches that were never loaded from disk).
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Renders one entry's block body (the lines covered by its CRC).
    fn render_entry(e: &CacheEntry) -> String {
        let ckpt = e.checkpoint.to_text();
        let mut out = String::new();
        out.push_str(&format!("key={}\n", e.key.to_text()));
        out.push_str(&format!(
            "counts={} {} {}\n",
            e.counts.all, e.counts.any, e.counts.members
        ));
        out.push_str(&format!("samples={}\n", e.samples));
        out.push_str(&format!("seed={}\n", e.seed));
        out.push_str(&format!("ckpt_lines={}\n", ckpt.lines().count()));
        out.push_str(&ckpt);
        if !ckpt.ends_with('\n') {
            out.push('\n');
        }
        out
    }

    /// Persists every resident entry to `<dir>/cache.flowserve` in a
    /// line-based text format (entries sorted by key hash so the file
    /// is deterministic for a given population). Each entry block is
    /// prefixed with `entry lines=<n> crc=<fnv1a-hex>` and the file is
    /// written atomically (temp file + rename), so neither a torn write
    /// nor a crash mid-save can corrupt an existing cache in place.
    pub fn save_to_dir(&self, dir: &Path) -> FlowResult<()> {
        self.save_to_dir_opts(dir, true)
    }

    /// [`ServeCache::save_to_dir`] with entry checksums optionally
    /// disabled (`crc=-` markers; blocks load unverified). Exists so
    /// the resilience-overhead benchmark can price checksumming; serving
    /// always checksums.
    pub fn save_to_dir_opts(&self, dir: &Path, checksums: bool) -> FlowResult<()> {
        std::fs::create_dir_all(dir)?;
        let mut hashes: Vec<u64> = self.slots.keys().copied().collect();
        hashes.sort_unstable();
        let mut out = String::new();
        out.push_str(&header());
        out.push('\n');
        out.push_str(&format!("entries={}\n", hashes.len()));
        for h in hashes {
            let Some(slot) = self.slots.get(&h) else {
                continue;
            };
            let block = Self::render_entry(&slot.entry);
            let crc = if checksums {
                format!("{:016x}", Fnv64::new().bytes(block.as_bytes()).finish())
            } else {
                CRC_DISABLED.to_string()
            };
            out.push_str(&format!(
                "entry lines={} crc={}\n",
                block.lines().count(),
                crc
            ));
            out.push_str(&block);
        }
        if fault::fires("serve.cache_write_corrupt") {
            // Torn write: keep a prefix only (the format is ASCII, so
            // any byte index is a char boundary).
            out.truncate(out.len() * 3 / 5);
        }
        let path = dir.join("cache.flowserve");
        let tmp = dir.join("cache.flowserve.tmp");
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Loads a cache persisted by [`ServeCache::save_to_dir`]. A missing
    /// file yields an empty cache (cold start). Corrupt content — bad
    /// header, torn tail, checksum mismatches, unparsable blocks — is
    /// quarantined into `<dir>/quarantine/` and every intact block still
    /// loads; [`ServeCache::quarantined`] counts the incidents. Only
    /// real I/O failures surface as errors.
    pub fn load_from_dir(dir: &Path, byte_budget: usize) -> FlowResult<Self> {
        let path = dir.join("cache.flowserve");
        let mut text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(ServeCache::new(byte_budget));
            }
            Err(e) => return Err(e.into()),
        };
        if fault::fires("serve.cache_read_corrupt") {
            // Torn read: the file's tail never made it to disk.
            text.truncate(text.len() / 2);
        }
        let (mut cache, quarantined) = Self::from_text_lossy(&text, byte_budget);
        if !quarantined.is_empty() {
            let qdir = dir.join("quarantine");
            std::fs::create_dir_all(&qdir)?;
            for (i, (reason, block)) in quarantined.iter().enumerate() {
                let body = format!("# quarantined: {reason}\n{block}");
                std::fs::write(qdir.join(format!("block-{i:04}.txt")), body)?;
            }
            cache.quarantined = quarantined.len() as u64;
            flow_obs::counter("serve.cache.quarantined", quarantined.len() as u64);
            flow_obs::event(|| {
                flow_obs::Event::new("serve.cache_quarantined")
                    .u64("blocks", quarantined.len() as u64)
                    .str("reason", quarantined[0].0.clone())
            });
        }
        Ok(cache)
    }

    /// Parses persisted cache text, returning the cache plus every
    /// quarantined `(reason, block text)` pair. Never fails: corruption
    /// costs entries, not the load.
    fn from_text_lossy(text: &str, byte_budget: usize) -> (Self, Vec<(String, String)>) {
        let mut cache = ServeCache::new(byte_budget);
        let mut quarantined: Vec<(String, String)> = Vec::new();
        let lines: Vec<&str> = text.lines().collect();
        if lines.first().copied() != Some(header().as_str()) {
            quarantined.push((
                format!("bad cache header; expected `{}`", header()),
                text.to_string(),
            ));
            return (cache, quarantined);
        }
        let declared: Option<usize> = lines
            .get(1)
            .and_then(|l| l.strip_prefix("entries="))
            .and_then(|v| v.parse().ok());
        if declared.is_none() {
            quarantined.push(("bad or missing entry-count line".into(), text.to_string()));
            return (cache, quarantined);
        }
        // Blocks are delimited by their `entry ` marker lines; scanning
        // for markers (rather than trusting each block's declared
        // length) makes recovery self-resynchronizing after corruption.
        let markers: Vec<usize> = (2..lines.len())
            .filter(|&i| lines[i].starts_with("entry "))
            .collect();
        for (m, &start) in markers.iter().enumerate() {
            let end = markers.get(m + 1).copied().unwrap_or(lines.len());
            let body = lines.get(start + 1..end).unwrap_or(&[]);
            let block_text = || {
                let mut t = String::new();
                for l in &lines[start..end] {
                    t.push_str(l);
                    t.push('\n');
                }
                t
            };
            match Self::parse_block(lines[start], body) {
                Ok(entry) => cache.insert(entry),
                Err(e) => quarantined.push((e.to_string(), block_text())),
            }
        }
        if let Some(declared) = declared {
            let found = cache.len() + quarantined.len();
            if found < declared {
                // Blocks lost wholesale (e.g. a torn tail that took the
                // markers with it): record the shortfall as one incident
                // so operators see it even without surviving bytes.
                quarantined.push((
                    format!("cache declared {declared} entries, found {found} blocks"),
                    String::new(),
                ));
            }
        }
        // Loading is population, not traffic: reset the flow counters.
        cache.hits = 0;
        cache.misses = 0;
        cache.evictions = 0;
        (cache, quarantined)
    }

    /// Parses one `entry lines=<n> crc=<hex>` block into an entry,
    /// verifying length and checksum first.
    fn parse_block(marker: &str, body: &[&str]) -> FlowResult<CacheEntry> {
        let corrupt = |detail: String| FlowError::Checkpoint { detail };
        let rest = marker
            .strip_prefix("entry lines=")
            .ok_or_else(|| corrupt(format!("bad entry marker `{marker}`")))?;
        let (len_text, crc_text) = rest
            .split_once(" crc=")
            .ok_or_else(|| corrupt(format!("entry marker missing crc: `{marker}`")))?;
        let declared_lines: usize = len_text
            .parse()
            .map_err(|_| corrupt(format!("bad entry line count `{len_text}`")))?;
        if body.len() != declared_lines {
            return Err(corrupt(format!(
                "entry truncated or overrun: declared {declared_lines} lines, found {}",
                body.len()
            )));
        }
        if crc_text != CRC_DISABLED {
            let expected: u64 = u64::from_str_radix(crc_text, 16)
                .map_err(|_| corrupt(format!("bad entry crc `{crc_text}`")))?;
            let mut h = Fnv64::new();
            for l in body {
                h = h.bytes(l.as_bytes()).bytes(b"\n");
            }
            let actual = h.finish();
            if actual != expected {
                return Err(corrupt(format!(
                    "entry checksum mismatch: stored {expected:016x}, computed {actual:016x}"
                )));
            }
        }
        let mut lines = body.iter().copied();
        let mut expect = |prefix: &str| -> FlowResult<String> {
            let line = lines
                .next()
                .ok_or_else(|| corrupt(format!("truncated entry: missing `{prefix}` line")))?;
            line.strip_prefix(prefix)
                .map(str::to_owned)
                .ok_or_else(|| corrupt(format!("expected `{prefix}...`, got `{line}`")))
        };
        let key = QueryKey::from_text(&expect("key=")?)?;
        let counts_text = expect("counts=")?;
        let mut parts = counts_text.split_whitespace();
        let mut next_u64 = |what: &str| -> FlowResult<u64> {
            parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| corrupt(format!("bad counts field `{what}`")))
        };
        let counts = TargetCounts {
            all: next_u64("all")?,
            any: next_u64("any")?,
            members: next_u64("members")?,
        };
        let samples: u64 = expect("samples=")?
            .parse()
            .map_err(|_| corrupt("bad samples".into()))?;
        let seed: u64 = expect("seed=")?
            .parse()
            .map_err(|_| corrupt("bad seed".into()))?;
        let ckpt_lines: usize = expect("ckpt_lines=")?
            .parse()
            .map_err(|_| corrupt("bad ckpt_lines".into()))?;
        let mut ckpt_text = String::new();
        for _ in 0..ckpt_lines {
            let line = lines
                .next()
                .ok_or_else(|| corrupt("truncated checkpoint in cache".into()))?;
            ckpt_text.push_str(line);
            ckpt_text.push('\n');
        }
        let checkpoint = ChainCheckpoint::from_text(&ckpt_text)?;
        let model_version = key.fingerprint;
        Ok(CacheEntry {
            key,
            counts,
            samples,
            seed,
            model_version,
            checkpoint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow_graph::graph::graph_from_edges;
    use flow_graph::NodeId;
    use flow_icm::Icm;
    use flow_mcmc::{McmcConfig, SharedTarget};

    fn icm() -> Icm {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        Icm::new(g, vec![0.7, 0.4, 0.5, 0.6])
    }

    fn entry_for(model: &Icm, sink: u32, samples: u64) -> CacheEntry {
        let key = QueryKey::canonical(
            NodeId(0),
            &SharedTarget::Sink(NodeId(sink)),
            &[],
            &McmcConfig::default(),
            model,
        )
        .unwrap();
        let fingerprint = key.fingerprint;
        CacheEntry {
            key,
            counts: TargetCounts {
                all: samples / 2,
                any: samples / 2,
                members: samples / 2,
            },
            samples,
            seed: 42,
            model_version: fingerprint,
            checkpoint: ChainCheckpoint {
                edge_count: model.edge_count(),
                active_edges: vec![0, 2],
                proposal: Default::default(),
                steps: 1000,
                accepted: 400,
                rng_state: [1, 2, 3, 4],
            },
        }
    }

    #[test]
    fn invalidate_stale_drops_only_old_versions() {
        let old_model = icm();
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let new_model = Icm::new(g, vec![0.7, 0.4, 0.5, 0.61]);
        let mut cache = ServeCache::new(1 << 20);
        cache.insert(entry_for(&old_model, 1, 100));
        cache.insert(entry_for(&old_model, 3, 100));
        cache.insert(entry_for(&new_model, 3, 100));
        let bytes_before = cache.bytes();
        let new_fp = crate::key::model_fingerprint(&new_model);
        assert_eq!(cache.invalidate_stale(new_fp), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.bytes() < bytes_before);
        // The surviving entry still answers its key.
        assert!(cache.lookup(&entry_for(&new_model, 3, 100).key).is_some());
        // Idempotent: nothing left to drop.
        assert_eq!(cache.invalidate_stale(new_fp), 0);
    }

    #[test]
    fn half_width_shrinks_and_floors() {
        assert!(half_width(0.5, 0).is_infinite());
        assert!(half_width(0.5, 100) > half_width(0.5, 10_000));
        // Degenerate estimates still report non-zero width.
        assert!(half_width(0.0, 1000) > 0.0);
        assert!(half_width(1.0, 1000) > 0.0);
    }

    #[test]
    fn lookup_hits_then_misses_on_other_key() {
        let model = icm();
        let mut cache = ServeCache::new(1 << 20);
        cache.insert(entry_for(&model, 3, 100));
        let hit_key = entry_for(&model, 3, 100).key;
        let miss_key = entry_for(&model, 1, 100).key;
        assert!(cache.lookup(&hit_key).is_some());
        assert!(cache.lookup(&miss_key).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_eviction_respects_byte_budget_and_recency() {
        let model = icm();
        let one = entry_for(&model, 1, 100).approx_bytes();
        // Room for two entries, not three.
        let mut cache = ServeCache::new(one * 2 + one / 2);
        cache.insert(entry_for(&model, 1, 100));
        cache.insert(entry_for(&model, 2, 100));
        // Touch sink-1 so sink-2 is the LRU victim.
        let k1 = entry_for(&model, 1, 100).key;
        assert!(cache.lookup(&k1).is_some());
        cache.insert(entry_for(&model, 3, 100));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.lookup(&k1).is_some(), "recently-used entry survives");
        let k2 = entry_for(&model, 2, 100).key;
        assert!(cache.lookup(&k2).is_none(), "LRU entry was evicted");
        assert!(cache.bytes() <= one * 2 + one / 2);
    }

    #[test]
    fn oversized_entry_is_refused() {
        let model = icm();
        let mut cache = ServeCache::new(8);
        cache.insert(entry_for(&model, 1, 100));
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn persistence_round_trips() {
        let model = icm();
        let dir = std::env::temp_dir().join(format!(
            "flow-serve-cache-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let mut cache = ServeCache::new(1 << 20);
        cache.insert(entry_for(&model, 1, 100));
        cache.insert(entry_for(&model, 3, 250));
        cache.save_to_dir(&dir).unwrap();
        let mut loaded = ServeCache::load_from_dir(&dir, 1 << 20).unwrap();
        assert_eq!(loaded.len(), 2);
        let k = entry_for(&model, 3, 250).key;
        let e = loaded.lookup(&k).unwrap();
        assert_eq!(e.samples, 250);
        assert_eq!(e.counts.all, 125);
        assert_eq!(e.checkpoint.rng_state, [1, 2, 3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_cache_dir_loads_empty() {
        let dir = std::env::temp_dir().join("flow-serve-no-such-cache-dir");
        let cache = ServeCache::load_from_dir(&dir, 1 << 20).unwrap();
        assert!(cache.is_empty());
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("flow-serve-cache-{tag}-{}", std::process::id()))
    }

    #[test]
    fn corrupt_header_quarantines_the_file_and_loads_empty() {
        let dir = tmp_dir("bad-header");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("cache.flowserve"), "not a cache\n").unwrap();
        let cache = ServeCache::load_from_dir(&dir, 1 << 20).unwrap();
        assert!(cache.is_empty(), "corrupt file must cold-start, not panic");
        assert_eq!(cache.quarantined(), 1);
        assert!(
            dir.join("quarantine").join("block-0000.txt").exists(),
            "corrupt bytes must be preserved in the sidecar"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_byte_quarantines_one_entry_and_loads_the_rest() {
        let model = icm();
        let dir = tmp_dir("flipped-byte");
        let mut cache = ServeCache::new(1 << 20);
        cache.insert(entry_for(&model, 1, 100));
        cache.insert(entry_for(&model, 3, 250));
        cache.save_to_dir(&dir).unwrap();
        // Flip a digit inside the first entry's counts line.
        let path = dir.join("cache.flowserve");
        let text = std::fs::read_to_string(&path).unwrap();
        let target = text.lines().find(|l| l.starts_with("counts=")).unwrap();
        let vandalized = text.replacen(target, "counts=999999 0 0", 1);
        assert_ne!(text, vandalized);
        std::fs::write(&path, vandalized).unwrap();

        let mut loaded = ServeCache::load_from_dir(&dir, 1 << 20).unwrap();
        assert_eq!(loaded.quarantined(), 1, "checksum must catch the flip");
        assert_eq!(loaded.len(), 1, "the intact entry still loads");
        let intact: Vec<u64> = [1u32, 3u32]
            .iter()
            .filter(|&&s| loaded.lookup(&entry_for(&model, s, 100).key).is_some())
            .map(|&s| u64::from(s))
            .collect();
        assert_eq!(intact.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_quarantines_without_losing_the_intact_prefix() {
        let model = icm();
        let dir = tmp_dir("torn-tail");
        let mut cache = ServeCache::new(1 << 20);
        cache.insert(entry_for(&model, 1, 100));
        cache.insert(entry_for(&model, 2, 100));
        cache.insert(entry_for(&model, 3, 100));
        cache.save_to_dir(&dir).unwrap();
        let path = dir.join("cache.flowserve");
        let text = std::fs::read_to_string(&path).unwrap();
        // Cut mid-way through the last entry, as a crash would.
        let cut = text.len() - text.len() / 5;
        std::fs::write(&path, &text[..cut]).unwrap();

        let loaded = ServeCache::load_from_dir(&dir, 1 << 20).unwrap();
        assert!(loaded.quarantined() >= 1, "torn tail must be quarantined");
        assert_eq!(loaded.len(), 2, "intact prefix entries survive");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unchecksummed_save_round_trips() {
        let model = icm();
        let dir = tmp_dir("no-crc");
        let mut cache = ServeCache::new(1 << 20);
        cache.insert(entry_for(&model, 1, 100));
        cache.save_to_dir_opts(&dir, false).unwrap();
        let text = std::fs::read_to_string(dir.join("cache.flowserve")).unwrap();
        assert!(
            text.contains("crc=-"),
            "disabled checksums use the `-` marker"
        );
        let loaded = ServeCache::load_from_dir(&dir, 1 << 20).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.quarantined(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
