//! The serving engine: batch execution, cache maintenance, statistics.
//!
//! [`ServeEngine::execute_batch`] is the one entry point: it plans the
//! batch ([`crate::plan`]), runs the sampling plans on the bounded
//! worker pool ([`crate::exec`]), folds outcomes back into per-query
//! [`QueryOutcome`]s in submission order, and updates the estimate
//! cache so the *next* batch gets hits and warm starts.
//!
//! Engines are constructed through the validating [`EngineBuilder`]
//! (`ServeEngine::builder()`); invalid configurations are typed
//! [`FlowError::Config`] errors at build time, never panics at serve
//! time.
//!
//! With `shards > 1` the engine becomes a **sharded router**
//! (DESIGN.md §16): the model's edges are partitioned deterministically
//! ([`flow_graph::partition_edges`]), each query is routed to the
//! minimal shard set covering its relevant subgraph
//! ([`crate::route`]), and routed queries run on per-shard child
//! engines — each with its own cache, breaker, and stats — over a
//! projected [`SubIcm`] whose chains walk a sub-multinomial of
//! `m_shard << m` edges. Queries spanning every shard fall back to the
//! global path, which is byte-identical to an unsharded engine.
//!
//! The precision contract: every answered query reports its achieved
//! 95% half-width, and when that is looser than the requested tolerance
//! (budget exhaustion, deadline degradation, or sample caps) the answer
//! carries an explicit
//! [`DegradationReason::PrecisionNotReached`] rather than silently
//! under-delivering.

use crate::breaker::{BreakerConfig, BreakerDecision, CircuitBreaker};
use crate::cache::{half_width, CacheEntry, ServeCache};
use crate::exec::{run_plans_report, ExecutorConfig, PlanStatus};
use crate::plan::{
    mix64, plan_batch, trace_id, BatchPlan, EarlyResolution, FlowQuery, Plan, PlanWork,
    PlannerConfig,
};
use crate::route::{route_query, Route};
use flow_core::{FlowError, FlowResult};
use flow_graph::{partition_edges, EdgeId, EdgePartition};
use flow_icm::{model_fingerprint, Icm, SubIcm};
use flow_mcmc::{DegradationReason, McmcConfig, SharedChainOutcome, TargetCounts};
use std::collections::BTreeMap;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Baseline chain configuration (class + minimum samples).
    pub mcmc: McmcConfig,
    /// Tolerance applied when a query does not state one.
    pub default_tolerance: f64,
    /// Worker pool, admission policy, and retry policy.
    pub executor: ExecutorConfig,
    /// Per-chain circuit breaker shape.
    pub breaker: BreakerConfig,
    /// Estimate-cache byte budget (0 disables caching).
    pub cache_bytes: usize,
    /// Engine seed; chain seeds derive from it and each chain key.
    pub engine_seed: u64,
    /// Hard per-plan cap on retained samples.
    pub max_samples: usize,
    /// Shard count for the sharded router; `1` (the default) serves
    /// every query on the global, unsharded path.
    pub shards: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            mcmc: McmcConfig::default(),
            default_tolerance: 0.02,
            executor: ExecutorConfig::default(),
            breaker: BreakerConfig::default(),
            cache_bytes: 8 << 20,
            engine_seed: 0,
            max_samples: 200_000,
            shards: 1,
        }
    }
}

impl ServeConfig {
    fn planner(&self) -> PlannerConfig {
        PlannerConfig {
            mcmc: self.mcmc,
            default_tolerance: self.default_tolerance,
            engine_seed: self.engine_seed,
            max_samples: self.max_samples,
            shard: 0,
        }
    }
}

/// Validating constructor for [`ServeEngine`]:
/// `ServeEngine::builder().cache(..).model_fingerprint(..).shards(..).build()?`.
///
/// Every invalid combination is a typed [`FlowError::Config`] at build
/// time — a zero-worker executor, a non-positive tolerance, a zero
/// sample cap — instead of a panic or a silent misbehaviour at serve
/// time. The builder replaces the deprecated `ServeEngine::new` /
/// `ServeEngine::with_cache` constructors.
#[derive(Default)]
pub struct EngineBuilder {
    config: ServeConfig,
    cache: Option<ServeCache>,
    explicit_cache_bytes: Option<usize>,
    model_fingerprint: Option<u64>,
}

impl EngineBuilder {
    /// Replaces the whole base configuration (granular setters applied
    /// afterwards still win).
    #[must_use]
    pub fn config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// Baseline chain configuration (class + minimum samples).
    #[must_use]
    pub fn mcmc(mut self, mcmc: McmcConfig) -> Self {
        self.config.mcmc = mcmc;
        self
    }

    /// Tolerance applied when a query does not state one.
    #[must_use]
    pub fn default_tolerance(mut self, tolerance: f64) -> Self {
        self.config.default_tolerance = tolerance;
        self
    }

    /// Worker pool, admission policy, and retry policy.
    #[must_use]
    pub fn executor(mut self, executor: ExecutorConfig) -> Self {
        self.config.executor = executor;
        self
    }

    /// Per-chain circuit-breaker shape.
    #[must_use]
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.config.breaker = breaker;
        self
    }

    /// Estimate-cache byte budget (0 disables caching). Conflicts with
    /// [`EngineBuilder::cache`]: a pre-populated cache already fixes
    /// its budget.
    #[must_use]
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.explicit_cache_bytes = Some(bytes);
        self
    }

    /// Engine seed; chain seeds derive from it and each chain key.
    #[must_use]
    pub fn engine_seed(mut self, seed: u64) -> Self {
        self.config.engine_seed = seed;
        self
    }

    /// Hard per-plan cap on retained samples.
    #[must_use]
    pub fn max_samples(mut self, max_samples: usize) -> Self {
        self.config.max_samples = max_samples;
        self
    }

    /// Shard count for the sharded router (`1` = unsharded).
    #[must_use]
    pub fn shards(mut self, shards: u32) -> Self {
        self.config.shards = shards;
        self
    }

    /// Starts the engine over a pre-populated (e.g. loaded-from-disk)
    /// cache instead of a cold one.
    #[must_use]
    pub fn cache(mut self, cache: ServeCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Declares the model version the engine will serve: entries of a
    /// provided cache keyed on any other fingerprint are invalidated at
    /// build, so a recovered cache can never answer for a retrained
    /// model.
    #[must_use]
    pub fn model_fingerprint(mut self, fingerprint: u64) -> Self {
        self.model_fingerprint = Some(fingerprint);
        self
    }

    /// Validates and builds the engine.
    pub fn build(self) -> FlowResult<ServeEngine> {
        let EngineBuilder {
            mut config,
            cache,
            explicit_cache_bytes,
            model_fingerprint,
        } = self;
        let invalid = |detail: String| Err(FlowError::Config { detail });
        if let Some(bytes) = explicit_cache_bytes {
            if cache.is_some() {
                return invalid(
                    "both cache(..) and cache_bytes(..) were set; a pre-populated \
                     cache already fixes its byte budget"
                        .into(),
                );
            }
            config.cache_bytes = bytes;
        }
        if !(config.default_tolerance.is_finite() && config.default_tolerance > 0.0) {
            return invalid(format!(
                "default_tolerance must be positive and finite, got {}",
                config.default_tolerance
            ));
        }
        if config.max_samples == 0 {
            return invalid("max_samples must be at least 1".into());
        }
        if config.executor.workers == 0 {
            return invalid("executor needs at least one worker".into());
        }
        if config.executor.retry.max_attempts == 0 {
            return invalid(
                "retry policy needs at least one attempt (max_attempts = 0 would \
                 never run a plan)"
                    .into(),
            );
        }
        if config.shards == 0 {
            return invalid("shard count must be at least 1 (1 = unsharded)".into());
        }
        let cache = cache.unwrap_or_else(|| ServeCache::new(config.cache_bytes));
        let mut engine = ServeEngine::from_parts(config, cache, 0);
        if let Some(fp) = model_fingerprint {
            engine.cache.invalidate_stale(fp);
        }
        Ok(engine)
    }
}

/// How an answer was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Fresh sampling on a (possibly shared) cold chain.
    Fresh,
    /// Straight from cache; zero chain steps spent.
    CacheHit,
    /// Warm continuation of a cached chain, counts pooled.
    WarmRefinement,
    /// Short-circuited by an open circuit breaker: served from
    /// whatever warm statistics exist (possibly none), zero chain
    /// steps spent, always flagged
    /// [`DegradationReason::BreakerOpen`].
    ShortCircuited,
}

/// A served estimate.
#[derive(Clone, Debug)]
pub struct Answer {
    /// Flow-probability estimate (all-targets frequency).
    pub estimate: f64,
    /// Achieved 95% confidence half-width.
    pub half_width: f64,
    /// Retained samples behind the estimate.
    pub samples: u64,
    /// Production path.
    pub served: Served,
    /// Every way the answer fell short; empty means clean.
    pub degradation: Vec<DegradationReason>,
}

/// Per-query result of a batch.
#[derive(Clone, Debug)]
pub enum QueryOutcome {
    /// The query was answered (possibly degraded; see the answer).
    Answered(Answer),
    /// Explicit backpressure: admission shed the query. The carried
    /// error is always [`FlowError::Overloaded`] with a deterministic
    /// retry-after hint; clients should retry, not fail.
    Rejected {
        /// The typed overload rejection.
        error: FlowError,
    },
    /// The query failed with a typed error before or during sampling.
    Failed(FlowError),
}

/// Counters accumulated across batches.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Queries submitted.
    pub queries: u64,
    /// Queries answered (any `Served` path).
    pub answered: u64,
    /// Answers served straight from cache.
    pub cache_hits: u64,
    /// Answers requiring fresh sampling.
    pub fresh: u64,
    /// Answers served by warm refinement.
    pub refined: u64,
    /// Queries rejected by backpressure.
    pub rejected: u64,
    /// Queries failed with typed errors.
    pub failed: u64,
    /// Shared plans executed.
    pub plans: u64,
    /// Total chain steps spent.
    pub steps: u64,
    /// Answers carrying at least one degradation reason.
    pub degraded: u64,
    /// Transient-failure retries performed by the executor.
    pub retries: u64,
    /// Plans shed by admission control (subset of `rejected` queries).
    pub shed: u64,
    /// Answers short-circuited by an open circuit breaker.
    pub breaker_answers: u64,
}

/// One shard's serving unit: the projected sub-model and a child
/// engine (own cache, breaker, stats) whose canonical keys carry the
/// shard's slot.
struct ShardUnit {
    sub: SubIcm,
    engine: ServeEngine,
}

/// The sharded router's materialized state, lazily (re)built per
/// parent-model fingerprint.
struct Sharding {
    /// Fingerprint of the parent model the partition was built for.
    fingerprint: u64,
    partition: EdgePartition,
    /// One unit per shard, indexed by shard id (empty shards included
    /// for alignment; routing never selects them).
    units: Vec<ShardUnit>,
    /// Lazily materialized merged units for cross-shard routes, keyed
    /// by the sorted member-shard set.
    merged: Vec<(Vec<u32>, ShardUnit)>,
}

/// Shard slot for a merged cross-shard unit: a pure function of the
/// member set (so chain seeds stay batch-order independent) offset
/// into the high half of the slot space, where it can never collide
/// with a per-shard slot `s + 1`.
fn merged_slot(set: &[u32]) -> u32 {
    let mut h = 0x5eed_ca57u64;
    for &s in set {
        h = mix64(h, u64::from(s) + 1);
    }
    (h as u32) | 0x8000_0000
}

impl Sharding {
    /// Index of the merged unit for `set`, materializing it on first
    /// use: the sub-model over the union of the member shards' edges,
    /// in ascending parent edge order (visit-order independent).
    fn merged_index(
        &mut self,
        icm: &Icm,
        set: Vec<u32>,
        config: &ServeConfig,
    ) -> FlowResult<usize> {
        if let Some(ix) = self.merged.iter().position(|(s, _)| *s == set) {
            return Ok(ix);
        }
        let mut edges: Vec<EdgeId> = Vec::new();
        for &s in &set {
            edges.extend(self.partition.edges_of(s));
        }
        edges.sort_unstable_by_key(|e| e.index());
        let sub = SubIcm::project(icm, &edges)?;
        let slot = merged_slot(&set);
        let unit = ShardUnit {
            sub,
            engine: child_engine(*config, slot),
        };
        self.merged.push((set, unit));
        Ok(self.merged.len() - 1)
    }
}

/// A per-shard child engine: same knobs as the parent but unsharded,
/// with a cold cache and its canonical keys pinned to `slot`.
fn child_engine(mut config: ServeConfig, slot: u32) -> ServeEngine {
    config.shards = 1;
    ServeEngine::from_parts(config, ServeCache::new(config.cache_bytes), slot)
}

/// The serving engine. Owns the cache; one instance per model-serving
/// process (the model itself is passed per batch so a retrain shows up
/// as a fingerprint change, not an engine rebuild). Construct via
/// [`ServeEngine::builder`].
pub struct ServeEngine {
    config: ServeConfig,
    cache: ServeCache,
    breaker: CircuitBreaker,
    stats: ServeStats,
    /// Shard slot stamped into this engine's canonical keys: `0` for
    /// the global engine, `s + 1` for the sharded router's children.
    shard_slot: u32,
    /// Router state, present once a sharded engine has seen a model.
    sharding: Option<Box<Sharding>>,
}

impl ServeEngine {
    /// The validating builder — the supported way to construct an
    /// engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    fn from_parts(config: ServeConfig, cache: ServeCache, shard_slot: u32) -> Self {
        ServeEngine {
            config,
            cache,
            breaker: CircuitBreaker::new(config.breaker),
            stats: ServeStats::default(),
            shard_slot,
            sharding: None,
        }
    }

    /// An engine with a cold cache.
    #[deprecated(note = "use `ServeEngine::builder()...build()?`, which validates the config")]
    pub fn new(config: ServeConfig) -> Self {
        let cache = ServeCache::new(config.cache_bytes);
        Self::from_parts(config, cache, 0)
    }

    /// An engine over a pre-populated (e.g. loaded-from-disk) cache.
    #[deprecated(note = "use `ServeEngine::builder().cache(cache).build()?`")]
    pub fn with_cache(config: ServeConfig, cache: ServeCache) -> Self {
        Self::from_parts(config, cache, 0)
    }

    /// The engine's circuit breaker (read-only; for tests/telemetry).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The engine's cache (e.g. for persistence).
    pub fn cache(&self) -> &ServeCache {
        &self.cache
    }

    /// Accumulated statistics. Under a sharded engine these aggregate
    /// across the router: routed queries' outcomes are absorbed into
    /// the parent's counters as they are stitched back.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Per-shard child-engine statistics, indexed by shard id. Empty
    /// until a sharded engine has served its first batch (or `[]`
    /// forever on an unsharded engine).
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.sharding
            .as_ref()
            .map(|s| s.units.iter().map(|u| u.engine.stats).collect())
            .unwrap_or_default()
    }

    /// Installs a new model version: eagerly invalidates every cache
    /// entry keyed on a different fingerprint and returns how many were
    /// dropped.
    #[deprecated(
        note = "use `install_model_icm`, which also swaps the sharded router shard-granularly"
    )]
    pub fn install_model(&mut self, fingerprint: u64) -> usize {
        self.cache.invalidate_stale(fingerprint)
    }

    /// Installs a new model version, shard-granularly.
    ///
    /// The global cache drops entries keyed on any other fingerprint,
    /// and a sharded engine re-partitions eagerly: shards whose
    /// projected sub-model fingerprint is unchanged keep their unit —
    /// cache, breaker, and stats intact — while changed shards are
    /// rebuilt cold. Returns how many cache entries were dropped across
    /// the global cache and all retired units.
    ///
    /// The model itself is still passed per batch
    /// ([`Self::execute_batch`]), so a swap cannot interrupt in-flight
    /// work — the current batch holds `&mut self` and finishes on the
    /// model it was handed; the next batch simply arrives with the new
    /// `Icm` whose fingerprint now matches the surviving entries.
    /// Calling this is an eager-reclamation optimization plus telemetry
    /// hook, not a correctness requirement: stale entries can never hit
    /// anyway because the fingerprint is part of every key.
    pub fn install_model_icm(&mut self, icm: &Icm) -> usize {
        let fingerprint = model_fingerprint(icm);
        let mut dropped = self.cache.invalidate_stale(fingerprint);
        if self.config.shards > 1 {
            match self.ensure_sharding(icm) {
                Ok(d) => dropped += d,
                // A failed rebuild leaves the router unmaterialized;
                // the next batch retries (and falls back globally).
                Err(_) => self.sharding = None,
            }
        }
        dropped
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// (Re)builds the router state for `icm`, reusing every unit whose
    /// projected sub-model is unchanged. Returns how many cache entries
    /// the retired units held.
    fn ensure_sharding(&mut self, icm: &Icm) -> FlowResult<usize> {
        let fingerprint = model_fingerprint(icm);
        if self
            .sharding
            .as_ref()
            .is_some_and(|s| s.fingerprint == fingerprint)
        {
            return Ok(0);
        }
        let partition = partition_edges(icm.graph(), self.config.shards);
        let (mut old_units, old_merged) = match self.sharding.take() {
            Some(old) => (
                old.units.into_iter().map(Some).collect::<Vec<_>>(),
                old.merged,
            ),
            None => (Vec::new(), Vec::new()),
        };
        let shard_count = partition.shard_count();
        let mut reused = vec![false; shard_count as usize];
        let mut units = Vec::with_capacity(shard_count as usize);
        for s in 0..shard_count {
            let sub = SubIcm::project(icm, &partition.edges_of(s))?;
            let carried = old_units.get_mut(s as usize).and_then(|slot| {
                if slot
                    .as_ref()
                    .is_some_and(|u| u.sub.fingerprint() == sub.fingerprint())
                {
                    slot.take()
                } else {
                    None
                }
            });
            match carried {
                Some(unit) => {
                    reused[s as usize] = true;
                    units.push(unit);
                }
                None => units.push(ShardUnit {
                    sub,
                    engine: child_engine(self.config, s + 1),
                }),
            }
        }
        let mut dropped: usize = old_units
            .into_iter()
            .flatten()
            .map(|u| u.engine.cache.len())
            .sum();
        // A merged unit survives exactly when every member shard was
        // reused: equal member fingerprints mean the union sub-model —
        // and hence every cached answer — is unchanged.
        let mut merged = Vec::new();
        for (set, unit) in old_merged {
            let intact = set
                .iter()
                .all(|&s| reused.get(s as usize).copied().unwrap_or(false));
            if intact {
                merged.push((set, unit));
            } else {
                dropped += unit.engine.cache.len();
            }
        }
        flow_obs::event(|| {
            flow_obs::Event::new("serve.shard.rebuilt")
                .u64("shards", u64::from(shard_count))
                .u64("reused", reused.iter().filter(|&&r| r).count() as u64)
                .u64("dropped_entries", dropped as u64)
        });
        self.sharding = Some(Box::new(Sharding {
            fingerprint,
            partition,
            units,
            merged,
        }));
        Ok(dropped)
    }

    /// Executes a batch of queries, returning one outcome per query in
    /// submission order. A `shards > 1` engine routes each query to the
    /// minimal shard set covering its relevant subgraph and
    /// scatter-gathers the per-unit sub-batches; everything else — and
    /// every query spanning too many shards — runs on the global path,
    /// byte-identical to an unsharded engine.
    pub fn execute_batch(&mut self, icm: &Icm, queries: &[FlowQuery]) -> Vec<QueryOutcome> {
        if self.config.shards > 1 {
            self.execute_batch_sharded(icm, queries)
        } else {
            self.execute_batch_local(icm, queries)
        }
    }

    /// The sharded router: route, scatter per-unit sub-batches, gather
    /// outcomes back into submission order.
    fn execute_batch_sharded(&mut self, icm: &Icm, queries: &[FlowQuery]) -> Vec<QueryOutcome> {
        let _batch = flow_obs::span("serve.batch.sharded");
        if let Err(e) = self.ensure_sharding(icm) {
            // Partitioning failed (malformed model): serve the whole
            // batch on the global path rather than dropping it.
            flow_obs::event(|| {
                flow_obs::Event::new("serve.shard.disabled").str("error", e.to_string())
            });
            return self.execute_batch_local(icm, queries);
        }
        let Some(mut sharding) = self.sharding.take() else {
            return self.execute_batch_local(icm, queries);
        };

        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; queries.len()];
        let mut global: Vec<usize> = Vec::new();
        let mut groups: BTreeMap<Vec<u32>, Vec<usize>> = BTreeMap::new();
        for (i, q) in queries.iter().enumerate() {
            match route_query(icm, &sharding.partition, q) {
                Route::Global => global.push(i),
                Route::Shards(set) => {
                    flow_obs::event(|| {
                        let ids: Vec<String> = set.iter().map(|s| s.to_string()).collect();
                        flow_obs::Event::new("serve.query.routed")
                            .u64("query", i as u64)
                            .u64("span", set.len() as u64)
                            .str("shards", ids.join(","))
                    });
                    groups.entry(set).or_default().push(i);
                }
                Route::Reject(e) => {
                    let trace = trace_id(0, i);
                    self.stats.queries += 1;
                    self.stats.failed += 1;
                    flow_obs::event(|| {
                        flow_obs::Event::new("serve.query.rejected")
                            .trace(trace)
                            .u64("query", i as u64)
                            .str("error", e.to_string())
                    });
                    flow_obs::event(|| {
                        flow_obs::Event::new("serve.query.resolved")
                            .trace(trace)
                            .u64("query", i as u64)
                            .str("path", "failed")
                    });
                    outcomes[i] = Some(QueryOutcome::Failed(e));
                }
            }
        }

        // Scatter: each routed group runs on its unit's child engine
        // over the projected sub-model (node ids are preserved, so the
        // queries need no translation). Group order is the BTreeMap's
        // set order — deterministic — and every chain seed is a pure
        // function of (engine seed, canonical key), so batch
        // composition cannot change any answer.
        for (set, idxs) in groups {
            let unit = if let [s] = set.as_slice() {
                &mut sharding.units[*s as usize]
            } else {
                match sharding.merged_index(icm, set, &self.config) {
                    Ok(ix) => &mut sharding.merged[ix].1,
                    Err(_) => {
                        // Unprojectable union (cannot happen for a
                        // well-formed partition): global fallback.
                        global.extend(idxs);
                        continue;
                    }
                }
            };
            let sub_queries: Vec<FlowQuery> = idxs.iter().map(|&i| queries[i].clone()).collect();
            let before = unit.engine.stats;
            let sub_outcomes = unit.engine.execute_batch(unit.sub.icm(), &sub_queries);
            let after = unit.engine.stats;
            self.stats.queries += idxs.len() as u64;
            self.stats.plans += after.plans - before.plans;
            self.stats.steps += after.steps - before.steps;
            self.stats.retries += after.retries - before.retries;
            self.stats.shed += after.shed - before.shed;
            for (&i, outcome) in idxs.iter().zip(sub_outcomes) {
                self.absorb_outcome(&outcome);
                outcomes[i] = Some(outcome);
            }
        }
        self.sharding = Some(sharding);

        // Gather the global remainder on the local path (its own stats
        // accounting), preserving submission order.
        if !global.is_empty() {
            global.sort_unstable();
            let global_queries: Vec<FlowQuery> =
                global.iter().map(|&i| queries[i].clone()).collect();
            let global_outcomes = self.execute_batch_local(icm, &global_queries);
            for (&i, outcome) in global.iter().zip(global_outcomes) {
                outcomes[i] = Some(outcome);
            }
        }

        outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or(QueryOutcome::Failed(FlowError::Io {
                    detail: "query matched no route".into(),
                }))
            })
            .collect()
    }

    /// Folds a routed query's outcome into the parent's counters (the
    /// child engine keeps its own full accounting).
    fn absorb_outcome(&mut self, outcome: &QueryOutcome) {
        match outcome {
            QueryOutcome::Answered(a) => {
                self.stats.answered += 1;
                match a.served {
                    Served::CacheHit => self.stats.cache_hits += 1,
                    Served::Fresh => self.stats.fresh += 1,
                    Served::WarmRefinement => self.stats.refined += 1,
                    Served::ShortCircuited => self.stats.breaker_answers += 1,
                }
                if !a.degradation.is_empty() {
                    self.stats.degraded += 1;
                }
            }
            QueryOutcome::Rejected { .. } => self.stats.rejected += 1,
            QueryOutcome::Failed(_) => self.stats.failed += 1,
        }
    }

    /// The unsharded serving path (and the sharded router's global
    /// fallback).
    fn execute_batch_local(&mut self, icm: &Icm, queries: &[FlowQuery]) -> Vec<QueryOutcome> {
        let _batch = flow_obs::span("serve.batch");
        self.stats.queries += queries.len() as u64;
        let mut planner = self.config.planner();
        planner.shard = self.shard_slot;
        let batch: BatchPlan = plan_batch(icm, &mut self.cache, &planner, queries);
        self.stats.plans += batch.plans.len() as u64;

        // Breaker gate: an open chain's plans never reach the executor.
        // Re-id the executable subset densely (the executor indexes its
        // result vector by plan id) and remember each slot's original
        // plan.
        let mut exec_plans: Vec<Plan> = Vec::new();
        let mut origin: Vec<usize> = Vec::new();
        let mut short_circuited: Vec<(usize, u64)> = Vec::new();
        for (i, plan) in batch.plans.iter().enumerate() {
            let _t = flow_obs::TraceContext::enter(plan.trace());
            match self.breaker.decide(plan.chain_key()) {
                BreakerDecision::ShortCircuit { failures } => short_circuited.push((i, failures)),
                BreakerDecision::Allow | BreakerDecision::Probe => {
                    let mut p = plan.clone();
                    p.id = exec_plans.len();
                    origin.push(i);
                    exec_plans.push(p);
                }
            }
        }

        let (statuses, report) = run_plans_report(icm, &exec_plans, &self.config.executor);
        self.stats.retries += report.retries;
        self.stats.shed += report.shed;

        // Feed executed-plan results back into the breaker. Only
        // stall-like signals count as failures: client-shaped
        // degradations (step budgets, deadlines, precision misses)
        // must not trip it, or clean runs would stop being
        // byte-identical. Shed plans never ran, so they carry no
        // signal either way.
        for (slot, status) in statuses.iter().enumerate() {
            let plan = &batch.plans[origin[slot]];
            let _t = flow_obs::TraceContext::enter(plan.trace());
            match status {
                PlanStatus::Completed(out) => {
                    let stall_like = out.degradation.iter().any(|d| {
                        matches!(
                            d,
                            DegradationReason::ChainRestarted { .. }
                                | DegradationReason::ChainStalled { .. }
                                | DegradationReason::ChainFailed { .. }
                        )
                    });
                    self.breaker.record(plan.chain_key(), !stall_like);
                }
                PlanStatus::Failed(_) => self.breaker.record(plan.chain_key(), false),
                PlanStatus::Rejected(_) => {}
            }
        }

        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; queries.len()];
        for (i, early) in batch.early.iter().enumerate() {
            let _t = flow_obs::TraceContext::enter(batch.traces.get(i).copied().unwrap_or(0));
            match early {
                Some(EarlyResolution::Hit(estimate, hw, samples)) => {
                    let tolerance = queries
                        .get(i)
                        .and_then(|q| q.tolerance)
                        .unwrap_or(self.config.default_tolerance);
                    outcomes[i] = Some(self.answered(Answer {
                        estimate: *estimate,
                        half_width: *hw,
                        samples: *samples,
                        served: Served::CacheHit,
                        degradation: precision_check(*hw, tolerance),
                    }));
                }
                Some(EarlyResolution::Failed(e)) => {
                    self.stats.failed += 1;
                    outcomes[i] = Some(QueryOutcome::Failed(e.clone()));
                }
                None => {}
            }
        }

        for (i, failures) in short_circuited {
            self.short_circuit_plan(&batch.plans[i], failures, &mut outcomes);
        }
        for (slot, status) in statuses.into_iter().enumerate() {
            self.fold_plan(&batch.plans[origin[slot]], status, &mut outcomes);
        }

        let outcomes: Vec<QueryOutcome> = outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or(QueryOutcome::Failed(FlowError::Io {
                    detail: "query matched no plan and no early resolution".into(),
                }))
            })
            .collect();

        // Terminal per-query marker: the last event of every trace,
        // naming how the query was ultimately served.
        for (i, outcome) in outcomes.iter().enumerate() {
            let trace = batch.traces.get(i).copied().unwrap_or(0);
            flow_obs::event(|| {
                let e = flow_obs::Event::new("serve.query.resolved")
                    .trace(trace)
                    .u64("query", i as u64);
                match outcome {
                    QueryOutcome::Answered(a) => e
                        .str("path", served_label(a.served))
                        .u64("samples", a.samples)
                        .u64("degraded", a.degradation.len() as u64),
                    QueryOutcome::Rejected { .. } => e.str("path", "rejected"),
                    QueryOutcome::Failed(_) => e.str("path", "failed"),
                }
            });
        }
        outcomes
    }

    fn answered(&mut self, answer: Answer) -> QueryOutcome {
        self.stats.answered += 1;
        match answer.served {
            Served::CacheHit => self.stats.cache_hits += 1,
            Served::Fresh => self.stats.fresh += 1,
            Served::WarmRefinement => self.stats.refined += 1,
            Served::ShortCircuited => self.stats.breaker_answers += 1,
        }
        if !answer.degradation.is_empty() {
            self.stats.degraded += 1;
        }
        QueryOutcome::Answered(answer)
    }

    /// Serves every query of a breaker-blocked plan without sampling:
    /// refinements answer from their cached base statistics, cold plans
    /// answer with an honest zero-sample stub. Either way the answer is
    /// structured and flagged `BreakerOpen` — never an error, never a
    /// panic.
    fn short_circuit_plan(
        &mut self,
        plan: &Plan,
        failures: u64,
        outcomes: &mut [Option<QueryOutcome>],
    ) {
        match &plan.work {
            PlanWork::Refine { entry, base, .. } => {
                let _t = flow_obs::TraceContext::enter(entry.trace);
                let reason = DegradationReason::BreakerOpen {
                    failures,
                    cached_samples: base.samples,
                };
                flow_obs::event(|| reason.to_obs_event());
                let hw = base.half_width();
                let mut degradation = vec![reason];
                degradation.extend(precision_check(hw, entry.tolerance));
                let answer = Answer {
                    estimate: base.estimate(),
                    half_width: hw,
                    samples: base.samples,
                    served: Served::ShortCircuited,
                    degradation,
                };
                if let Some(o) = outcomes.get_mut(entry.query_index) {
                    *o = Some(self.answered(answer));
                }
            }
            PlanWork::Shared { entries, .. } => {
                for entry in entries {
                    let _t = flow_obs::TraceContext::enter(entry.trace);
                    let reason = DegradationReason::BreakerOpen {
                        failures,
                        cached_samples: 0,
                    };
                    flow_obs::event(|| reason.to_obs_event());
                    let mut degradation = vec![reason];
                    degradation.extend(precision_check(f64::INFINITY, entry.tolerance));
                    let answer = Answer {
                        estimate: 0.0,
                        half_width: f64::INFINITY,
                        samples: 0,
                        served: Served::ShortCircuited,
                        degradation,
                    };
                    if let Some(o) = outcomes.get_mut(entry.query_index) {
                        *o = Some(self.answered(answer));
                    }
                }
            }
        }
    }

    fn fold_plan(
        &mut self,
        plan: &Plan,
        status: PlanStatus,
        outcomes: &mut [Option<QueryOutcome>],
    ) {
        match (&plan.work, status) {
            (PlanWork::Shared { entries, seed, .. }, PlanStatus::Completed(outcome)) => {
                self.stats.steps += outcome.steps;
                for (slot, entry) in entries.iter().enumerate() {
                    let _t = flow_obs::TraceContext::enter(entry.trace);
                    let counts = outcome
                        .counts
                        .get(slot)
                        .copied()
                        .unwrap_or(TargetCounts::default());
                    let answer = self.finish_answer(
                        entry.tolerance,
                        counts,
                        outcome.samples_done as u64,
                        Served::Fresh,
                        &outcome,
                    );
                    // Only clean collections are admitted: a budget- or
                    // deadline-truncated result is shaped by *this*
                    // request's limits and must not answer later ones
                    // (it would also make warm replays diverge from
                    // cold ones in their reported degradations).
                    if outcome.samples_done > 0 && outcome.degradation.is_empty() {
                        self.cache.insert(CacheEntry {
                            key: entry.key.clone(),
                            counts,
                            samples: outcome.samples_done as u64,
                            seed: *seed,
                            model_version: entry.key.fingerprint,
                            checkpoint: outcome.checkpoint.clone(),
                        });
                    }
                    if let Some(o) = outcomes.get_mut(entry.query_index) {
                        *o = Some(self.answered(answer));
                    }
                }
            }
            (PlanWork::Refine { entry, base, .. }, PlanStatus::Completed(outcome)) => {
                let _t = flow_obs::TraceContext::enter(entry.trace);
                self.stats.steps += outcome.steps;
                let fresh = outcome
                    .counts
                    .first()
                    .copied()
                    .unwrap_or(TargetCounts::default());
                let pooled = base.counts.merge(&fresh);
                let samples = base.samples + outcome.samples_done as u64;
                let answer = self.finish_answer(
                    entry.tolerance,
                    pooled,
                    samples,
                    Served::WarmRefinement,
                    &outcome,
                );
                // Same clean-collections-only admission rule as above.
                if outcome.samples_done > 0 && outcome.degradation.is_empty() {
                    self.cache.insert(CacheEntry {
                        key: entry.key.clone(),
                        counts: pooled,
                        samples,
                        seed: base.seed,
                        model_version: entry.key.fingerprint,
                        checkpoint: outcome.checkpoint.clone(),
                    });
                }
                if let Some(o) = outcomes.get_mut(entry.query_index) {
                    *o = Some(self.answered(answer));
                }
            }
            (work, PlanStatus::Rejected(e)) => {
                for idx in work_query_indices(work) {
                    self.stats.rejected += 1;
                    if let Some(o) = outcomes.get_mut(idx) {
                        *o = Some(QueryOutcome::Rejected { error: e.clone() });
                    }
                }
            }
            (work, PlanStatus::Failed(e)) => {
                for idx in work_query_indices(work) {
                    self.stats.failed += 1;
                    if let Some(o) = outcomes.get_mut(idx) {
                        *o = Some(QueryOutcome::Failed(e.clone()));
                    }
                }
            }
        }
    }

    fn finish_answer(
        &mut self,
        tolerance: f64,
        counts: TargetCounts,
        samples: u64,
        served: Served,
        outcome: &SharedChainOutcome,
    ) -> Answer {
        let estimate = if samples == 0 {
            0.0
        } else {
            counts.all as f64 / samples as f64
        };
        let hw = half_width(estimate, samples);
        let mut degradation = outcome.degradation.clone();
        degradation.extend(precision_check(hw, tolerance));
        Answer {
            estimate,
            half_width: hw,
            samples,
            served,
            degradation,
        }
    }
}

fn served_label(served: Served) -> &'static str {
    match served {
        Served::Fresh => "fresh",
        Served::CacheHit => "cache_hit",
        Served::WarmRefinement => "warm_refinement",
        Served::ShortCircuited => "short_circuited",
    }
}

/// Emits and returns a `PrecisionNotReached` degradation when the
/// achieved half-width misses the tolerance.
fn precision_check(achieved: f64, target: f64) -> Vec<DegradationReason> {
    if achieved <= target {
        return Vec::new();
    }
    let reason = DegradationReason::PrecisionNotReached { achieved, target };
    flow_obs::event(|| reason.to_obs_event());
    vec![reason]
}

fn work_query_indices(work: &PlanWork) -> Vec<usize> {
    match work {
        PlanWork::Shared { entries, .. } => entries.iter().map(|e| e.query_index).collect(),
        PlanWork::Refine { entry, .. } => vec![entry.query_index],
    }
}
