//! The serving engine: batch execution, cache maintenance, statistics.
//!
//! [`ServeEngine::execute_batch`] is the one entry point: it plans the
//! batch ([`crate::plan`]), runs the sampling plans on the bounded
//! worker pool ([`crate::exec`]), folds outcomes back into per-query
//! [`QueryOutcome`]s in submission order, and updates the estimate
//! cache so the *next* batch gets hits and warm starts.
//!
//! The precision contract: every answered query reports its achieved
//! 95% half-width, and when that is looser than the requested tolerance
//! (budget exhaustion, deadline degradation, or sample caps) the answer
//! carries an explicit
//! [`DegradationReason::PrecisionNotReached`] rather than silently
//! under-delivering.

use crate::breaker::{BreakerConfig, BreakerDecision, CircuitBreaker};
use crate::cache::{half_width, CacheEntry, ServeCache};
use crate::exec::{run_plans_report, ExecutorConfig, PlanStatus};
use crate::plan::{
    plan_batch, BatchPlan, EarlyResolution, FlowQuery, Plan, PlanWork, PlannerConfig,
};
use flow_core::FlowError;
use flow_icm::Icm;
use flow_mcmc::{DegradationReason, McmcConfig, SharedChainOutcome, TargetCounts};

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Baseline chain configuration (class + minimum samples).
    pub mcmc: McmcConfig,
    /// Tolerance applied when a query does not state one.
    pub default_tolerance: f64,
    /// Worker pool, admission policy, and retry policy.
    pub executor: ExecutorConfig,
    /// Per-chain circuit breaker shape.
    pub breaker: BreakerConfig,
    /// Estimate-cache byte budget (0 disables caching).
    pub cache_bytes: usize,
    /// Engine seed; chain seeds derive from it and each chain key.
    pub engine_seed: u64,
    /// Hard per-plan cap on retained samples.
    pub max_samples: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            mcmc: McmcConfig::default(),
            default_tolerance: 0.02,
            executor: ExecutorConfig::default(),
            breaker: BreakerConfig::default(),
            cache_bytes: 8 << 20,
            engine_seed: 0,
            max_samples: 200_000,
        }
    }
}

impl ServeConfig {
    fn planner(&self) -> PlannerConfig {
        PlannerConfig {
            mcmc: self.mcmc,
            default_tolerance: self.default_tolerance,
            engine_seed: self.engine_seed,
            max_samples: self.max_samples,
        }
    }
}

/// How an answer was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Fresh sampling on a (possibly shared) cold chain.
    Fresh,
    /// Straight from cache; zero chain steps spent.
    CacheHit,
    /// Warm continuation of a cached chain, counts pooled.
    WarmRefinement,
    /// Short-circuited by an open circuit breaker: served from
    /// whatever warm statistics exist (possibly none), zero chain
    /// steps spent, always flagged
    /// [`DegradationReason::BreakerOpen`].
    ShortCircuited,
}

/// A served estimate.
#[derive(Clone, Debug)]
pub struct Answer {
    /// Flow-probability estimate (all-targets frequency).
    pub estimate: f64,
    /// Achieved 95% confidence half-width.
    pub half_width: f64,
    /// Retained samples behind the estimate.
    pub samples: u64,
    /// Production path.
    pub served: Served,
    /// Every way the answer fell short; empty means clean.
    pub degradation: Vec<DegradationReason>,
}

/// Per-query result of a batch.
#[derive(Clone, Debug)]
pub enum QueryOutcome {
    /// The query was answered (possibly degraded; see the answer).
    Answered(Answer),
    /// Explicit backpressure: admission shed the query. The carried
    /// error is always [`FlowError::Overloaded`] with a deterministic
    /// retry-after hint; clients should retry, not fail.
    Rejected {
        /// The typed overload rejection.
        error: FlowError,
    },
    /// The query failed with a typed error before or during sampling.
    Failed(FlowError),
}

/// Counters accumulated across batches.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Queries submitted.
    pub queries: u64,
    /// Queries answered (any `Served` path).
    pub answered: u64,
    /// Answers served straight from cache.
    pub cache_hits: u64,
    /// Answers requiring fresh sampling.
    pub fresh: u64,
    /// Answers served by warm refinement.
    pub refined: u64,
    /// Queries rejected by backpressure.
    pub rejected: u64,
    /// Queries failed with typed errors.
    pub failed: u64,
    /// Shared plans executed.
    pub plans: u64,
    /// Total chain steps spent.
    pub steps: u64,
    /// Answers carrying at least one degradation reason.
    pub degraded: u64,
    /// Transient-failure retries performed by the executor.
    pub retries: u64,
    /// Plans shed by admission control (subset of `rejected` queries).
    pub shed: u64,
    /// Answers short-circuited by an open circuit breaker.
    pub breaker_answers: u64,
}

/// The serving engine. Owns the cache; one instance per model-serving
/// process (the model itself is passed per batch so a retrain shows up
/// as a fingerprint change, not an engine rebuild).
pub struct ServeEngine {
    config: ServeConfig,
    cache: ServeCache,
    breaker: CircuitBreaker,
    stats: ServeStats,
}

impl ServeEngine {
    /// An engine with a cold cache.
    pub fn new(config: ServeConfig) -> Self {
        let cache = ServeCache::new(config.cache_bytes);
        Self::with_cache(config, cache)
    }

    /// An engine over a pre-populated (e.g. loaded-from-disk) cache.
    pub fn with_cache(config: ServeConfig, cache: ServeCache) -> Self {
        ServeEngine {
            config,
            cache,
            breaker: CircuitBreaker::new(config.breaker),
            stats: ServeStats::default(),
        }
    }

    /// The engine's circuit breaker (read-only; for tests/telemetry).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The engine's cache (e.g. for persistence).
    pub fn cache(&self) -> &ServeCache {
        &self.cache
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Installs a new model version: eagerly invalidates every cache
    /// entry keyed on a different fingerprint and returns how many were
    /// dropped.
    ///
    /// The model itself is still passed per batch ([`Self::execute_batch`]),
    /// so a swap cannot interrupt in-flight work — the current batch
    /// holds `&mut self` and finishes on the model it was handed; the
    /// next batch simply arrives with the new `Icm` whose fingerprint
    /// now matches the surviving entries. Calling this is an eager-
    /// reclamation optimization plus telemetry hook, not a correctness
    /// requirement: stale entries can never hit anyway because the
    /// fingerprint is part of every key.
    pub fn install_model(&mut self, fingerprint: u64) -> usize {
        self.cache.invalidate_stale(fingerprint)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Executes a batch of queries, returning one outcome per query in
    /// submission order.
    pub fn execute_batch(&mut self, icm: &Icm, queries: &[FlowQuery]) -> Vec<QueryOutcome> {
        let _batch = flow_obs::span("serve.batch");
        self.stats.queries += queries.len() as u64;
        let batch: BatchPlan = plan_batch(icm, &mut self.cache, &self.config.planner(), queries);
        self.stats.plans += batch.plans.len() as u64;

        // Breaker gate: an open chain's plans never reach the executor.
        // Re-id the executable subset densely (the executor indexes its
        // result vector by plan id) and remember each slot's original
        // plan.
        let mut exec_plans: Vec<Plan> = Vec::new();
        let mut origin: Vec<usize> = Vec::new();
        let mut short_circuited: Vec<(usize, u64)> = Vec::new();
        for (i, plan) in batch.plans.iter().enumerate() {
            let _t = flow_obs::TraceContext::enter(plan.trace());
            match self.breaker.decide(plan.chain_key()) {
                BreakerDecision::ShortCircuit { failures } => short_circuited.push((i, failures)),
                BreakerDecision::Allow | BreakerDecision::Probe => {
                    let mut p = plan.clone();
                    p.id = exec_plans.len();
                    origin.push(i);
                    exec_plans.push(p);
                }
            }
        }

        let (statuses, report) = run_plans_report(icm, &exec_plans, &self.config.executor);
        self.stats.retries += report.retries;
        self.stats.shed += report.shed;

        // Feed executed-plan results back into the breaker. Only
        // stall-like signals count as failures: client-shaped
        // degradations (step budgets, deadlines, precision misses)
        // must not trip it, or clean runs would stop being
        // byte-identical. Shed plans never ran, so they carry no
        // signal either way.
        for (slot, status) in statuses.iter().enumerate() {
            let plan = &batch.plans[origin[slot]];
            let _t = flow_obs::TraceContext::enter(plan.trace());
            match status {
                PlanStatus::Completed(out) => {
                    let stall_like = out.degradation.iter().any(|d| {
                        matches!(
                            d,
                            DegradationReason::ChainRestarted { .. }
                                | DegradationReason::ChainStalled { .. }
                                | DegradationReason::ChainFailed { .. }
                        )
                    });
                    self.breaker.record(plan.chain_key(), !stall_like);
                }
                PlanStatus::Failed(_) => self.breaker.record(plan.chain_key(), false),
                PlanStatus::Rejected(_) => {}
            }
        }

        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; queries.len()];
        for (i, early) in batch.early.iter().enumerate() {
            let _t = flow_obs::TraceContext::enter(batch.traces.get(i).copied().unwrap_or(0));
            match early {
                Some(EarlyResolution::Hit(estimate, hw, samples)) => {
                    let tolerance = queries
                        .get(i)
                        .and_then(|q| q.tolerance)
                        .unwrap_or(self.config.default_tolerance);
                    outcomes[i] = Some(self.answered(Answer {
                        estimate: *estimate,
                        half_width: *hw,
                        samples: *samples,
                        served: Served::CacheHit,
                        degradation: precision_check(*hw, tolerance),
                    }));
                }
                Some(EarlyResolution::Failed(e)) => {
                    self.stats.failed += 1;
                    outcomes[i] = Some(QueryOutcome::Failed(e.clone()));
                }
                None => {}
            }
        }

        for (i, failures) in short_circuited {
            self.short_circuit_plan(&batch.plans[i], failures, &mut outcomes);
        }
        for (slot, status) in statuses.into_iter().enumerate() {
            self.fold_plan(&batch.plans[origin[slot]], status, &mut outcomes);
        }

        let outcomes: Vec<QueryOutcome> = outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or(QueryOutcome::Failed(FlowError::Io {
                    detail: "query matched no plan and no early resolution".into(),
                }))
            })
            .collect();

        // Terminal per-query marker: the last event of every trace,
        // naming how the query was ultimately served.
        for (i, outcome) in outcomes.iter().enumerate() {
            let trace = batch.traces.get(i).copied().unwrap_or(0);
            flow_obs::event(|| {
                let e = flow_obs::Event::new("serve.query.resolved")
                    .trace(trace)
                    .u64("query", i as u64);
                match outcome {
                    QueryOutcome::Answered(a) => e
                        .str("path", served_label(a.served))
                        .u64("samples", a.samples)
                        .u64("degraded", a.degradation.len() as u64),
                    QueryOutcome::Rejected { .. } => e.str("path", "rejected"),
                    QueryOutcome::Failed(_) => e.str("path", "failed"),
                }
            });
        }
        outcomes
    }

    fn answered(&mut self, answer: Answer) -> QueryOutcome {
        self.stats.answered += 1;
        match answer.served {
            Served::CacheHit => self.stats.cache_hits += 1,
            Served::Fresh => self.stats.fresh += 1,
            Served::WarmRefinement => self.stats.refined += 1,
            Served::ShortCircuited => self.stats.breaker_answers += 1,
        }
        if !answer.degradation.is_empty() {
            self.stats.degraded += 1;
        }
        QueryOutcome::Answered(answer)
    }

    /// Serves every query of a breaker-blocked plan without sampling:
    /// refinements answer from their cached base statistics, cold plans
    /// answer with an honest zero-sample stub. Either way the answer is
    /// structured and flagged `BreakerOpen` — never an error, never a
    /// panic.
    fn short_circuit_plan(
        &mut self,
        plan: &Plan,
        failures: u64,
        outcomes: &mut [Option<QueryOutcome>],
    ) {
        match &plan.work {
            PlanWork::Refine { entry, base, .. } => {
                let _t = flow_obs::TraceContext::enter(entry.trace);
                let reason = DegradationReason::BreakerOpen {
                    failures,
                    cached_samples: base.samples,
                };
                flow_obs::event(|| reason.to_obs_event());
                let hw = base.half_width();
                let mut degradation = vec![reason];
                degradation.extend(precision_check(hw, entry.tolerance));
                let answer = Answer {
                    estimate: base.estimate(),
                    half_width: hw,
                    samples: base.samples,
                    served: Served::ShortCircuited,
                    degradation,
                };
                if let Some(o) = outcomes.get_mut(entry.query_index) {
                    *o = Some(self.answered(answer));
                }
            }
            PlanWork::Shared { entries, .. } => {
                for entry in entries {
                    let _t = flow_obs::TraceContext::enter(entry.trace);
                    let reason = DegradationReason::BreakerOpen {
                        failures,
                        cached_samples: 0,
                    };
                    flow_obs::event(|| reason.to_obs_event());
                    let mut degradation = vec![reason];
                    degradation.extend(precision_check(f64::INFINITY, entry.tolerance));
                    let answer = Answer {
                        estimate: 0.0,
                        half_width: f64::INFINITY,
                        samples: 0,
                        served: Served::ShortCircuited,
                        degradation,
                    };
                    if let Some(o) = outcomes.get_mut(entry.query_index) {
                        *o = Some(self.answered(answer));
                    }
                }
            }
        }
    }

    fn fold_plan(
        &mut self,
        plan: &Plan,
        status: PlanStatus,
        outcomes: &mut [Option<QueryOutcome>],
    ) {
        match (&plan.work, status) {
            (PlanWork::Shared { entries, seed, .. }, PlanStatus::Completed(outcome)) => {
                self.stats.steps += outcome.steps;
                for (slot, entry) in entries.iter().enumerate() {
                    let _t = flow_obs::TraceContext::enter(entry.trace);
                    let counts = outcome
                        .counts
                        .get(slot)
                        .copied()
                        .unwrap_or(TargetCounts::default());
                    let answer = self.finish_answer(
                        entry.tolerance,
                        counts,
                        outcome.samples_done as u64,
                        Served::Fresh,
                        &outcome,
                    );
                    // Only clean collections are admitted: a budget- or
                    // deadline-truncated result is shaped by *this*
                    // request's limits and must not answer later ones
                    // (it would also make warm replays diverge from
                    // cold ones in their reported degradations).
                    if outcome.samples_done > 0 && outcome.degradation.is_empty() {
                        self.cache.insert(CacheEntry {
                            key: entry.key.clone(),
                            counts,
                            samples: outcome.samples_done as u64,
                            seed: *seed,
                            model_version: entry.key.fingerprint,
                            checkpoint: outcome.checkpoint.clone(),
                        });
                    }
                    if let Some(o) = outcomes.get_mut(entry.query_index) {
                        *o = Some(self.answered(answer));
                    }
                }
            }
            (PlanWork::Refine { entry, base, .. }, PlanStatus::Completed(outcome)) => {
                let _t = flow_obs::TraceContext::enter(entry.trace);
                self.stats.steps += outcome.steps;
                let fresh = outcome
                    .counts
                    .first()
                    .copied()
                    .unwrap_or(TargetCounts::default());
                let pooled = base.counts.merge(&fresh);
                let samples = base.samples + outcome.samples_done as u64;
                let answer = self.finish_answer(
                    entry.tolerance,
                    pooled,
                    samples,
                    Served::WarmRefinement,
                    &outcome,
                );
                // Same clean-collections-only admission rule as above.
                if outcome.samples_done > 0 && outcome.degradation.is_empty() {
                    self.cache.insert(CacheEntry {
                        key: entry.key.clone(),
                        counts: pooled,
                        samples,
                        seed: base.seed,
                        model_version: entry.key.fingerprint,
                        checkpoint: outcome.checkpoint.clone(),
                    });
                }
                if let Some(o) = outcomes.get_mut(entry.query_index) {
                    *o = Some(self.answered(answer));
                }
            }
            (work, PlanStatus::Rejected(e)) => {
                for idx in work_query_indices(work) {
                    self.stats.rejected += 1;
                    if let Some(o) = outcomes.get_mut(idx) {
                        *o = Some(QueryOutcome::Rejected { error: e.clone() });
                    }
                }
            }
            (work, PlanStatus::Failed(e)) => {
                for idx in work_query_indices(work) {
                    self.stats.failed += 1;
                    if let Some(o) = outcomes.get_mut(idx) {
                        *o = Some(QueryOutcome::Failed(e.clone()));
                    }
                }
            }
        }
    }

    fn finish_answer(
        &mut self,
        tolerance: f64,
        counts: TargetCounts,
        samples: u64,
        served: Served,
        outcome: &SharedChainOutcome,
    ) -> Answer {
        let estimate = if samples == 0 {
            0.0
        } else {
            counts.all as f64 / samples as f64
        };
        let hw = half_width(estimate, samples);
        let mut degradation = outcome.degradation.clone();
        degradation.extend(precision_check(hw, tolerance));
        Answer {
            estimate,
            half_width: hw,
            samples,
            served,
            degradation,
        }
    }
}

fn served_label(served: Served) -> &'static str {
    match served {
        Served::Fresh => "fresh",
        Served::CacheHit => "cache_hit",
        Served::WarmRefinement => "warm_refinement",
        Served::ShortCircuited => "short_circuited",
    }
}

/// Emits and returns a `PrecisionNotReached` degradation when the
/// achieved half-width misses the tolerance.
fn precision_check(achieved: f64, target: f64) -> Vec<DegradationReason> {
    if achieved <= target {
        return Vec::new();
    }
    let reason = DegradationReason::PrecisionNotReached { achieved, target };
    flow_obs::event(|| reason.to_obs_event());
    vec![reason]
}

fn work_query_indices(work: &PlanWork) -> Vec<usize> {
    match work {
        PlanWork::Shared { entries, .. } => entries.iter().map(|e| e.query_index).collect(),
        PlanWork::Refine { entry, .. } => vec![entry.query_index],
    }
}
