//! The serving engine: batch execution, cache maintenance, statistics.
//!
//! [`ServeEngine::execute_batch`] is the one entry point: it plans the
//! batch ([`crate::plan`]), runs the sampling plans on the bounded
//! worker pool ([`crate::exec`]), folds outcomes back into per-query
//! [`QueryOutcome`]s in submission order, and updates the estimate
//! cache so the *next* batch gets hits and warm starts.
//!
//! The precision contract: every answered query reports its achieved
//! 95% half-width, and when that is looser than the requested tolerance
//! (budget exhaustion, deadline degradation, or sample caps) the answer
//! carries an explicit
//! [`DegradationReason::PrecisionNotReached`] rather than silently
//! under-delivering.

use crate::cache::{half_width, CacheEntry, ServeCache};
use crate::exec::{run_plans, ExecutorConfig, PlanStatus};
use crate::plan::{
    plan_batch, BatchPlan, EarlyResolution, FlowQuery, Plan, PlanWork, PlannerConfig,
};
use flow_core::FlowError;
use flow_icm::Icm;
use flow_mcmc::{DegradationReason, McmcConfig, SharedChainOutcome, TargetCounts};

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Baseline chain configuration (class + minimum samples).
    pub mcmc: McmcConfig,
    /// Tolerance applied when a query does not state one.
    pub default_tolerance: f64,
    /// Worker pool and admission queue shape.
    pub executor: ExecutorConfig,
    /// Estimate-cache byte budget (0 disables caching).
    pub cache_bytes: usize,
    /// Engine seed; chain seeds derive from it and each chain key.
    pub engine_seed: u64,
    /// Hard per-plan cap on retained samples.
    pub max_samples: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            mcmc: McmcConfig::default(),
            default_tolerance: 0.02,
            executor: ExecutorConfig::default(),
            cache_bytes: 8 << 20,
            engine_seed: 0,
            max_samples: 200_000,
        }
    }
}

impl ServeConfig {
    fn planner(&self) -> PlannerConfig {
        PlannerConfig {
            mcmc: self.mcmc,
            default_tolerance: self.default_tolerance,
            engine_seed: self.engine_seed,
            max_samples: self.max_samples,
        }
    }
}

/// How an answer was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Fresh sampling on a (possibly shared) cold chain.
    Fresh,
    /// Straight from cache; zero chain steps spent.
    CacheHit,
    /// Warm continuation of a cached chain, counts pooled.
    WarmRefinement,
}

/// A served estimate.
#[derive(Clone, Debug)]
pub struct Answer {
    /// Flow-probability estimate (all-targets frequency).
    pub estimate: f64,
    /// Achieved 95% confidence half-width.
    pub half_width: f64,
    /// Retained samples behind the estimate.
    pub samples: u64,
    /// Production path.
    pub served: Served,
    /// Every way the answer fell short; empty means clean.
    pub degradation: Vec<DegradationReason>,
}

/// Per-query result of a batch.
#[derive(Clone, Debug)]
pub enum QueryOutcome {
    /// The query was answered (possibly degraded; see the answer).
    Answered(Answer),
    /// Explicit backpressure: the submission queue was full.
    Rejected {
        /// True when the rejection came from queue admission.
        queue_full: bool,
    },
    /// The query failed with a typed error before or during sampling.
    Failed(FlowError),
}

/// Counters accumulated across batches.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Queries submitted.
    pub queries: u64,
    /// Queries answered (any `Served` path).
    pub answered: u64,
    /// Answers served straight from cache.
    pub cache_hits: u64,
    /// Answers requiring fresh sampling.
    pub fresh: u64,
    /// Answers served by warm refinement.
    pub refined: u64,
    /// Queries rejected by backpressure.
    pub rejected: u64,
    /// Queries failed with typed errors.
    pub failed: u64,
    /// Shared plans executed.
    pub plans: u64,
    /// Total chain steps spent.
    pub steps: u64,
    /// Answers carrying at least one degradation reason.
    pub degraded: u64,
}

/// The serving engine. Owns the cache; one instance per model-serving
/// process (the model itself is passed per batch so a retrain shows up
/// as a fingerprint change, not an engine rebuild).
pub struct ServeEngine {
    config: ServeConfig,
    cache: ServeCache,
    stats: ServeStats,
}

impl ServeEngine {
    /// An engine with a cold cache.
    pub fn new(config: ServeConfig) -> Self {
        let cache = ServeCache::new(config.cache_bytes);
        ServeEngine {
            config,
            cache,
            stats: ServeStats::default(),
        }
    }

    /// An engine over a pre-populated (e.g. loaded-from-disk) cache.
    pub fn with_cache(config: ServeConfig, cache: ServeCache) -> Self {
        ServeEngine {
            config,
            cache,
            stats: ServeStats::default(),
        }
    }

    /// The engine's cache (e.g. for persistence).
    pub fn cache(&self) -> &ServeCache {
        &self.cache
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Executes a batch of queries, returning one outcome per query in
    /// submission order.
    pub fn execute_batch(&mut self, icm: &Icm, queries: &[FlowQuery]) -> Vec<QueryOutcome> {
        let _batch = flow_obs::span("serve.batch");
        self.stats.queries += queries.len() as u64;
        let batch: BatchPlan = plan_batch(icm, &mut self.cache, &self.config.planner(), queries);
        self.stats.plans += batch.plans.len() as u64;

        let statuses = run_plans(icm, &batch.plans, &self.config.executor);

        let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; queries.len()];
        for (i, early) in batch.early.iter().enumerate() {
            match early {
                Some(EarlyResolution::Hit(estimate, hw, samples)) => {
                    let tolerance = queries
                        .get(i)
                        .and_then(|q| q.tolerance)
                        .unwrap_or(self.config.default_tolerance);
                    outcomes[i] = Some(self.answered(Answer {
                        estimate: *estimate,
                        half_width: *hw,
                        samples: *samples,
                        served: Served::CacheHit,
                        degradation: precision_check(*hw, tolerance),
                    }));
                }
                Some(EarlyResolution::Failed(e)) => {
                    self.stats.failed += 1;
                    outcomes[i] = Some(QueryOutcome::Failed(e.clone()));
                }
                None => {}
            }
        }

        for (plan, status) in batch.plans.iter().zip(statuses) {
            self.fold_plan(plan, status, &mut outcomes);
        }

        outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or(QueryOutcome::Failed(FlowError::Io {
                    detail: "query matched no plan and no early resolution".into(),
                }))
            })
            .collect()
    }

    fn answered(&mut self, answer: Answer) -> QueryOutcome {
        self.stats.answered += 1;
        match answer.served {
            Served::CacheHit => self.stats.cache_hits += 1,
            Served::Fresh => self.stats.fresh += 1,
            Served::WarmRefinement => self.stats.refined += 1,
        }
        if !answer.degradation.is_empty() {
            self.stats.degraded += 1;
        }
        QueryOutcome::Answered(answer)
    }

    fn fold_plan(
        &mut self,
        plan: &Plan,
        status: PlanStatus,
        outcomes: &mut [Option<QueryOutcome>],
    ) {
        match (&plan.work, status) {
            (PlanWork::Shared { entries, seed, .. }, PlanStatus::Completed(outcome)) => {
                self.stats.steps += outcome.steps;
                for (slot, entry) in entries.iter().enumerate() {
                    let counts = outcome
                        .counts
                        .get(slot)
                        .copied()
                        .unwrap_or(TargetCounts::default());
                    let answer = self.finish_answer(
                        entry.tolerance,
                        counts,
                        outcome.samples_done as u64,
                        Served::Fresh,
                        &outcome,
                    );
                    // Only clean collections are admitted: a budget- or
                    // deadline-truncated result is shaped by *this*
                    // request's limits and must not answer later ones
                    // (it would also make warm replays diverge from
                    // cold ones in their reported degradations).
                    if outcome.samples_done > 0 && outcome.degradation.is_empty() {
                        self.cache.insert(CacheEntry {
                            key: entry.key.clone(),
                            counts,
                            samples: outcome.samples_done as u64,
                            seed: *seed,
                            model_version: entry.key.fingerprint,
                            checkpoint: outcome.checkpoint.clone(),
                        });
                    }
                    if let Some(o) = outcomes.get_mut(entry.query_index) {
                        *o = Some(self.answered(answer));
                    }
                }
            }
            (PlanWork::Refine { entry, base, .. }, PlanStatus::Completed(outcome)) => {
                self.stats.steps += outcome.steps;
                let fresh = outcome
                    .counts
                    .first()
                    .copied()
                    .unwrap_or(TargetCounts::default());
                let pooled = base.counts.merge(&fresh);
                let samples = base.samples + outcome.samples_done as u64;
                let answer = self.finish_answer(
                    entry.tolerance,
                    pooled,
                    samples,
                    Served::WarmRefinement,
                    &outcome,
                );
                // Same clean-collections-only admission rule as above.
                if outcome.samples_done > 0 && outcome.degradation.is_empty() {
                    self.cache.insert(CacheEntry {
                        key: entry.key.clone(),
                        counts: pooled,
                        samples,
                        seed: base.seed,
                        model_version: entry.key.fingerprint,
                        checkpoint: outcome.checkpoint.clone(),
                    });
                }
                if let Some(o) = outcomes.get_mut(entry.query_index) {
                    *o = Some(self.answered(answer));
                }
            }
            (work, PlanStatus::Rejected) => {
                for idx in work_query_indices(work) {
                    self.stats.rejected += 1;
                    if let Some(o) = outcomes.get_mut(idx) {
                        *o = Some(QueryOutcome::Rejected { queue_full: true });
                    }
                }
            }
            (work, PlanStatus::Failed(e)) => {
                for idx in work_query_indices(work) {
                    self.stats.failed += 1;
                    if let Some(o) = outcomes.get_mut(idx) {
                        *o = Some(QueryOutcome::Failed(e.clone()));
                    }
                }
            }
        }
    }

    fn finish_answer(
        &mut self,
        tolerance: f64,
        counts: TargetCounts,
        samples: u64,
        served: Served,
        outcome: &SharedChainOutcome,
    ) -> Answer {
        let estimate = if samples == 0 {
            0.0
        } else {
            counts.all as f64 / samples as f64
        };
        let hw = half_width(estimate, samples);
        let mut degradation = outcome.degradation.clone();
        degradation.extend(precision_check(hw, tolerance));
        Answer {
            estimate,
            half_width: hw,
            samples,
            served,
            degradation,
        }
    }
}

/// Emits and returns a `PrecisionNotReached` degradation when the
/// achieved half-width misses the tolerance.
fn precision_check(achieved: f64, target: f64) -> Vec<DegradationReason> {
    if achieved <= target {
        return Vec::new();
    }
    let reason = DegradationReason::PrecisionNotReached { achieved, target };
    flow_obs::event(|| reason.to_obs_event());
    vec![reason]
}

fn work_query_indices(work: &PlanWork) -> Vec<usize> {
    match work {
        PlanWork::Shared { entries, .. } => entries.iter().map(|e| e.query_index).collect(),
        PlanWork::Refine { entry, .. } => vec![entry.query_index],
    }
}
