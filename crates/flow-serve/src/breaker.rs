//! Per-chain circuit breakers for the serving path.
//!
//! A chain class that keeps stalling or failing (sampler bugs, poisoned
//! model regions, injected faults) should stop burning sampler steps:
//! after [`BreakerConfig::trip_after`] *consecutive* failures for the
//! same chain key the breaker opens, and subsequent plans for that
//! chain are short-circuited — the engine serves a degraded answer from
//! whatever warm statistics it has ([`crate::engine::Served`]'s
//! short-circuit path) instead of sampling.
//!
//! Everything here is deterministic. The breaker keeps a logical clock
//! that advances once per [`CircuitBreaker::decide`] call (one per plan
//! considered), so open/half-open transitions depend only on the
//! sequence of plans, never on wall-clock time. After
//! `cooldown_plans` ticks an open breaker admits exactly one half-open
//! *probe* plan; a successful probe closes the breaker, a failed one
//! reopens it with doubled (capped) cooldown.
//!
//! What counts as a failure is decided by the engine and deliberately
//! excludes client-shaped degradations (step budgets, deadlines,
//! precision misses): only stall-like signals — hard plan errors and
//! `ChainRestarted`/`ChainStalled`/`ChainFailed` degradations — trip
//! the breaker. A fault-free run therefore never trips it, which keeps
//! clean serving output byte-identical with the breaker enabled.

use std::collections::HashMap;

/// Breaker shape. `trip_after == 0` disables breaking entirely.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker (0 disables).
    pub trip_after: u32,
    /// Logical ticks (plans considered) an open breaker waits before
    /// admitting a half-open probe.
    pub cooldown_plans: u64,
    /// Cap for the exponentially growing cooldown of repeat offenders.
    pub max_cooldown_plans: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 5,
            cooldown_plans: 8,
            max_cooldown_plans: 64,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never trips.
    pub fn disabled() -> Self {
        BreakerConfig {
            trip_after: 0,
            ..Default::default()
        }
    }
}

/// What the breaker says about one plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Closed: run the plan normally.
    Allow,
    /// Half-open: run the plan as a probe; its result closes or
    /// reopens the breaker.
    Probe,
    /// Open: do not sample; serve a degraded answer.
    ShortCircuit {
        /// Consecutive failures recorded when the breaker opened.
        failures: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct ChainState {
    consecutive_failures: u64,
    /// `Some(tick)` while open: short-circuit until the clock reaches it.
    open_until: Option<u64>,
    /// Cooldown applied at the next trip (doubles per consecutive trip).
    cooldown: u64,
    /// True between a `Probe` decision and its recorded result.
    probing: bool,
}

/// Deterministic per-chain circuit breaker (see module docs).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    clock: u64,
    chains: HashMap<u64, ChainState>,
    trips: u64,
}

impl CircuitBreaker {
    /// A breaker with every chain closed.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            clock: 0,
            chains: HashMap::new(),
            trips: 0,
        }
    }

    /// Times any chain's breaker has opened.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// True while `chain_key`'s breaker is open (short-circuiting).
    pub fn is_open(&self, chain_key: u64) -> bool {
        self.chains
            .get(&chain_key)
            .and_then(|s| s.open_until)
            .is_some_and(|until| self.clock < until)
    }

    /// Decides the fate of one plan for `chain_key`, advancing the
    /// logical clock by one tick.
    pub fn decide(&mut self, chain_key: u64) -> BreakerDecision {
        self.clock += 1;
        if self.config.trip_after == 0 {
            return BreakerDecision::Allow;
        }
        let cooldown = self.config.cooldown_plans;
        let state = self.chains.entry(chain_key).or_insert(ChainState {
            consecutive_failures: 0,
            open_until: None,
            cooldown,
            probing: false,
        });
        match state.open_until {
            Some(until) if self.clock < until => BreakerDecision::ShortCircuit {
                failures: state.consecutive_failures,
            },
            Some(_) => {
                // Cooldown elapsed: admit exactly one probe.
                state.open_until = None;
                state.probing = true;
                BreakerDecision::Probe
            }
            None => BreakerDecision::Allow,
        }
    }

    /// Records the result of a plan the breaker allowed (or probed).
    /// `ok = false` means a stall-like failure as defined by the engine.
    pub fn record(&mut self, chain_key: u64, ok: bool) {
        if self.config.trip_after == 0 {
            return;
        }
        let Some(state) = self.chains.get_mut(&chain_key) else {
            return;
        };
        if ok {
            state.consecutive_failures = 0;
            state.probing = false;
            state.cooldown = self.config.cooldown_plans;
            return;
        }
        state.consecutive_failures += 1;
        let was_probe = std::mem::replace(&mut state.probing, false);
        let should_open =
            was_probe || state.consecutive_failures >= u64::from(self.config.trip_after);
        if should_open {
            if was_probe {
                // Repeat offender: back off harder, up to the cap.
                state.cooldown = (state.cooldown * 2).min(self.config.max_cooldown_plans.max(1));
            }
            state.open_until = Some(self.clock + state.cooldown);
            self.trips += 1;
            let failures = state.consecutive_failures;
            let cooldown = state.cooldown;
            flow_obs::counter("serve.breaker.open", 1);
            flow_obs::event(|| {
                flow_obs::Event::new("serve.breaker_open")
                    .u64("chain_key", chain_key)
                    .u64("failures", failures)
                    .u64("cooldown_plans", cooldown)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(k: u32) -> BreakerConfig {
        BreakerConfig {
            trip_after: k,
            cooldown_plans: 3,
            max_cooldown_plans: 12,
        }
    }

    #[test]
    fn trips_after_k_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(config(3));
        for _ in 0..2 {
            assert_eq!(b.decide(7), BreakerDecision::Allow);
            b.record(7, false);
        }
        // A success resets the streak.
        assert_eq!(b.decide(7), BreakerDecision::Allow);
        b.record(7, true);
        for _ in 0..2 {
            assert_eq!(b.decide(7), BreakerDecision::Allow);
            b.record(7, false);
        }
        assert!(!b.is_open(7), "two failures after a reset must not trip");
        assert_eq!(b.decide(7), BreakerDecision::Allow);
        b.record(7, false);
        assert!(b.is_open(7), "third consecutive failure trips");
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn open_breaker_short_circuits_then_probes_on_schedule() {
        let mut b = CircuitBreaker::new(config(1));
        assert_eq!(b.decide(9), BreakerDecision::Allow);
        b.record(9, false);
        // Cooldown is 3 ticks: two short-circuits, then a probe.
        assert!(matches!(
            b.decide(9),
            BreakerDecision::ShortCircuit { failures: 1 }
        ));
        assert!(matches!(b.decide(9), BreakerDecision::ShortCircuit { .. }));
        assert_eq!(b.decide(9), BreakerDecision::Probe);
        // Successful probe closes the breaker.
        b.record(9, true);
        assert_eq!(b.decide(9), BreakerDecision::Allow);
        assert!(!b.is_open(9));
    }

    #[test]
    fn failed_probe_reopens_with_doubled_capped_cooldown() {
        let mut b = CircuitBreaker::new(config(1));
        assert_eq!(b.decide(4), BreakerDecision::Allow);
        b.record(4, false); // trip, cooldown 3
        let mut probes = 0;
        for _ in 0..40 {
            match b.decide(4) {
                BreakerDecision::Probe => {
                    probes += 1;
                    b.record(4, false); // probe fails: cooldown doubles
                }
                BreakerDecision::ShortCircuit { .. } => {}
                BreakerDecision::Allow => panic!("breaker must not silently close"),
            }
        }
        // Cooldowns 3, 6, 12, 12 (capped), ... over 40 ticks: >= 3 probes.
        assert!(probes >= 3, "expected several probes, got {probes}");
        assert!(b.trips() > 1);
    }

    #[test]
    fn disabled_breaker_always_allows() {
        let mut b = CircuitBreaker::new(BreakerConfig::disabled());
        for _ in 0..10 {
            assert_eq!(b.decide(1), BreakerDecision::Allow);
            b.record(1, false);
        }
        assert!(!b.is_open(1));
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn chains_are_independent() {
        let mut b = CircuitBreaker::new(config(1));
        assert_eq!(b.decide(1), BreakerDecision::Allow);
        b.record(1, false);
        assert!(b.is_open(1));
        assert_eq!(
            b.decide(2),
            BreakerDecision::Allow,
            "other chain unaffected"
        );
    }
}
