//! The query planner: canonicalize, consult the cache, group, budget.
//!
//! Planning happens before any sampling and decides, per query:
//!
//! * **reject** — directly contradictory conditions become a typed
//!   [`FlowError`] immediately (`find_contradiction` runs inside key
//!   canonicalization), so malformed queries cost zero chain steps;
//! * **hit** — a cache entry for the same canonical key whose
//!   half-width already meets the request tolerance is served without
//!   sampling;
//! * **refine** — a cache entry that exists but is too loose seeds a
//!   warm continuation of its own chain for just the missing samples;
//! * **share** — remaining queries group by [`QueryKey::chain_key`]
//!   (same source, conditions, config class, model): one chain serves
//!   the whole group, reading every member's target off each retained
//!   sample. This is where batched serving beats a per-query loop — a
//!   group of `k` same-source queries pays one burn-in instead of `k`.
//!
//! Chain seeds are derived from `mix64(engine_seed, chain_key)` — a
//! pure function of the *question*, not of batch composition — so a
//! query's trajectory (and hence its estimate, bit for bit) is the same
//! whether it runs alone, in a group, or against a warm cache.
//!
//! Planning also mints each query's **trace id** ([`trace_id`]): a
//! deterministic, clock-free causal coordinate derived from the
//! canonical key hash and the query's batch index. The planner enters
//! the query's [`flow_obs::TraceContext`] while resolving it (so cache
//! lookups and rejections carry the trace) and every [`PlanEntry`]
//! carries its query's trace; the executor re-enters the plan's
//! primary trace around execution, and `serve.query.planned` link
//! events tie every member query to the plan that serves it.

use crate::cache::{CacheEntry, ServeCache};
use crate::key::QueryKey;
use flow_core::FlowError;
use flow_graph::NodeId;
use flow_icm::{FlowCondition, Icm};
use flow_mcmc::{
    shared_chain_flows, McmcConfig, SharedChainOutcome, SharedChainRequest, SharedTarget,
};
use std::collections::HashMap;
use std::time::Duration;

/// One serving request, as submitted by a client.
#[derive(Clone, Debug)]
pub struct FlowQuery {
    /// Flow source.
    pub source: NodeId,
    /// Flow target: single sink or community.
    pub target: SharedTarget,
    /// Flow conditions (any order; canonicalized by the planner).
    pub conditions: Vec<FlowCondition>,
    /// Requested confidence half-width; engine default when `None`.
    pub tolerance: Option<f64>,
    /// Per-query chain-step budget (deterministic degradation knob).
    pub max_steps: Option<u64>,
    /// Per-query wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl FlowQuery {
    /// A plain source-to-sink query with engine defaults.
    pub fn flow(source: NodeId, sink: NodeId) -> Self {
        FlowQuery {
            source,
            target: SharedTarget::Sink(sink),
            conditions: Vec::new(),
            tolerance: None,
            max_steps: None,
            deadline_ms: None,
        }
    }
}

/// Planner knobs (a slice of the engine's `ServeConfig`).
#[derive(Clone, Copy, Debug)]
pub struct PlannerConfig {
    /// Baseline chain configuration (class + minimum samples).
    pub mcmc: McmcConfig,
    /// Tolerance applied when a query does not state one.
    pub default_tolerance: f64,
    /// Engine seed mixed into every chain seed.
    pub engine_seed: u64,
    /// Hard per-plan cap on retained samples.
    pub max_samples: usize,
    /// Shard slot stamped into every canonical key: `0` for the global
    /// engine, `s + 1` for the per-shard engines of a sharded router
    /// (see [`QueryKey::shard`]).
    pub shard: u32,
}

/// Retained samples needed to promise `tolerance` at worst-case
/// Bernoulli variance, floored by the engine's baseline sample count
/// and capped by `max_samples`.
pub fn samples_for_tolerance(tolerance: f64, floor: usize, cap: usize) -> usize {
    let tol = tolerance.max(1e-6);
    let needed = (0.98 / tol).powi(2).ceil() as usize;
    needed.max(floor).min(cap.max(floor))
}

/// SplitMix64-style mixer for deriving chain seeds.
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Domain separator for trace ids, so a trace can never collide with a
/// chain seed derived from the same key hash.
const TRACE_DOMAIN: u64 = 0x7_1ace_1d00;

/// Deterministic trace id for the `query_index`-th query of a batch.
///
/// A pure function of the canonical key hash and the batch position —
/// no clocks, no randomness — so two runs of the same batch mint
/// byte-identical trace ids. Rejected queries (no canonical key) use
/// `key_hash = 0`; the batch index still makes their traces unique.
pub fn trace_id(key_hash: u64, query_index: usize) -> u64 {
    mix64(key_hash ^ TRACE_DOMAIN, query_index as u64)
}

/// One query's slot inside a plan.
#[derive(Clone, Debug)]
pub struct PlanEntry {
    /// Index into the submitted batch.
    pub query_index: usize,
    /// The query's canonical key.
    pub key: QueryKey,
    /// Resolved tolerance for this query.
    pub tolerance: f64,
    /// The query's causal trace id ([`trace_id`]).
    pub trace: u64,
}

/// The sampling work one plan performs.
#[derive(Clone, Debug)]
pub enum PlanWork {
    /// A cold shared chain answering one or more same-chain queries.
    Shared {
        /// The group's chain identity.
        chain_key: u64,
        /// Derived chain seed (`mix64(engine_seed, chain_key)`).
        seed: u64,
        /// Retained samples to collect (max of members' needs).
        samples: usize,
        /// Member queries, each read off every retained sample.
        entries: Vec<PlanEntry>,
    },
    /// A warm continuation of a cached chain for one query.
    Refine {
        /// The query being refined.
        entry: PlanEntry,
        /// The cached entry providing counts and chain state (boxed:
        /// a checkpoint carries the full edge-state vector).
        base: Box<CacheEntry>,
        /// Additional retained samples to collect.
        extra_samples: usize,
    },
}

/// A schedulable unit of sampling work.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Dense plan id (index into the executor's result vector).
    pub id: usize,
    /// What to sample.
    pub work: PlanWork,
    /// Most restrictive member step budget.
    pub max_steps: Option<u64>,
    /// Most restrictive member deadline.
    pub deadline: Option<Duration>,
}

impl Plan {
    /// The chain identity this plan samples (refinements continue the
    /// cached entry's chain). Used by the per-chain circuit breaker.
    pub fn chain_key(&self) -> u64 {
        match &self.work {
            PlanWork::Shared { chain_key, .. } => *chain_key,
            PlanWork::Refine { entry, .. } => entry.key.chain_key(),
        }
    }

    /// The plan's primary trace: the first member query's trace id.
    /// Execution-side telemetry (worker spans, chain events,
    /// degradations) is recorded under this trace; `serve.query.planned`
    /// link events connect every member query's own trace to it.
    pub fn trace(&self) -> u64 {
        match &self.work {
            PlanWork::Shared { entries, .. } => entries.first().map_or(0, |e| e.trace),
            PlanWork::Refine { entry, .. } => entry.trace,
        }
    }

    /// Deterministic upper-bound cost estimate in chain steps, used by
    /// admission control. A shared chain pays burn-in plus one thinned
    /// step per retained sample; a refinement skips burn-in (it resumes
    /// a warm checkpoint). An explicit `max_steps` bound caps the
    /// estimate: the chain cannot legally spend more.
    pub fn estimated_steps(&self) -> u64 {
        let raw = match &self.work {
            PlanWork::Shared {
                samples, entries, ..
            } => {
                let class = entries.first().map(|e| e.key.config);
                let (burn_in, thin) = class.map_or((0, 1), |c| (c.burn_in, c.thin.max(1)));
                burn_in + (*samples as u64) * thin
            }
            PlanWork::Refine {
                entry,
                extra_samples,
                ..
            } => (*extra_samples as u64) * entry.key.config.thin.max(1),
        };
        match self.max_steps {
            Some(cap) => raw.min(cap),
            None => raw,
        }
    }

    /// Runs this plan's chain to completion (or budget exhaustion).
    pub fn execute(&self, icm: &Icm) -> flow_core::FlowResult<SharedChainOutcome> {
        match &self.work {
            PlanWork::Shared {
                seed,
                samples,
                entries,
                ..
            } => {
                let Some(first) = entries.first() else {
                    return Err(FlowError::GraphInconsistency {
                        detail: "empty shared plan".into(),
                    });
                };
                let targets: Vec<SharedTarget> =
                    entries.iter().map(|e| e.key.target.clone()).collect();
                let config = first.key.config.to_config(*samples);
                shared_chain_flows(
                    icm,
                    &config,
                    &SharedChainRequest {
                        source: first.key.source,
                        targets: &targets,
                        conditions: &first.key.conditions,
                        seed: *seed,
                        warm: None,
                        samples: *samples,
                        max_steps: self.max_steps,
                        deadline: self.deadline,
                    },
                )
            }
            PlanWork::Refine {
                entry,
                base,
                extra_samples,
            } => {
                let targets = [entry.key.target.clone()];
                let config = entry.key.config.to_config(*extra_samples);
                shared_chain_flows(
                    icm,
                    &config,
                    &SharedChainRequest {
                        source: entry.key.source,
                        targets: &targets,
                        conditions: &entry.key.conditions,
                        seed: base.seed,
                        warm: Some(&base.checkpoint),
                        samples: *extra_samples,
                        max_steps: self.max_steps,
                        deadline: self.deadline,
                    },
                )
            }
        }
    }
}

/// How the planner resolved a query before any sampling.
#[derive(Clone, Debug)]
pub enum EarlyResolution {
    /// Served from cache: `(estimate, half_width, samples)`.
    Hit(f64, f64, u64),
    /// Rejected with a typed error (contradictory conditions).
    Failed(FlowError),
}

/// The planner's output for one batch.
#[derive(Debug, Default)]
pub struct BatchPlan {
    /// Per-query early resolutions (`None` = handled by a plan).
    pub early: Vec<Option<EarlyResolution>>,
    /// Sampling plans, densely numbered from zero.
    pub plans: Vec<Plan>,
    /// Per-query trace ids, aligned with the submitted batch
    /// (rejected and cache-hit queries included).
    pub traces: Vec<u64>,
}

/// Plans a batch: canonicalize every query, serve what the cache can,
/// refine what it almost can, and group the rest into shared chains.
pub fn plan_batch(
    icm: &Icm,
    cache: &mut ServeCache,
    config: &PlannerConfig,
    queries: &[FlowQuery],
) -> BatchPlan {
    let mut early: Vec<Option<EarlyResolution>> = vec![None; queries.len()];
    let mut traces: Vec<u64> = vec![0; queries.len()];
    let mut refines: Vec<(PlanEntry, Box<CacheEntry>, usize)> = Vec::new();
    let mut groups: HashMap<u64, Vec<PlanEntry>> = HashMap::new();
    let mut group_order: Vec<u64> = Vec::new();

    for (i, q) in queries.iter().enumerate() {
        let tolerance = q.tolerance.unwrap_or(config.default_tolerance);
        let key = match QueryKey::canonical(q.source, &q.target, &q.conditions, &config.mcmc, icm) {
            Ok(k) => k.with_shard(config.shard),
            Err(e) => {
                let trace = trace_id(0, i);
                traces[i] = trace;
                flow_obs::event(|| {
                    flow_obs::Event::new("serve.query.rejected")
                        .trace(trace)
                        .u64("query", i as u64)
                        .str("error", e.to_string())
                });
                early[i] = Some(EarlyResolution::Failed(e));
                continue;
            }
        };
        let trace = trace_id(key.hash64(), i);
        traces[i] = trace;
        // Everything resolved for this query — cache lookup included —
        // records under its trace.
        let _t = flow_obs::TraceContext::enter(trace);
        match cache.lookup(&key) {
            Some(entry) if entry.half_width() <= tolerance => {
                early[i] = Some(EarlyResolution::Hit(
                    entry.estimate(),
                    entry.half_width(),
                    entry.samples,
                ));
            }
            Some(entry) => {
                // Cached but too loose: continue its chain for the
                // missing samples only.
                let total_needed =
                    samples_for_tolerance(tolerance, config.mcmc.samples, config.max_samples);
                let extra = total_needed
                    .saturating_sub(entry.samples as usize)
                    .max(config.mcmc.samples.clamp(16, 64));
                let base = Box::new(entry.clone());
                refines.push((
                    PlanEntry {
                        query_index: i,
                        key,
                        tolerance,
                        trace,
                    },
                    base,
                    extra,
                ));
            }
            None => {
                let chain_key = key.chain_key();
                if !groups.contains_key(&chain_key) {
                    group_order.push(chain_key);
                }
                groups.entry(chain_key).or_default().push(PlanEntry {
                    query_index: i,
                    key,
                    tolerance,
                    trace,
                });
            }
        }
    }

    let combine_budgets = |entries: &[PlanEntry]| -> (Option<u64>, Option<Duration>) {
        let mut max_steps: Option<u64> = None;
        let mut deadline: Option<Duration> = None;
        for e in entries {
            let Some(q) = queries.get(e.query_index) else {
                continue;
            };
            if let Some(s) = q.max_steps {
                max_steps = Some(max_steps.map_or(s, |cur| cur.min(s)));
            }
            if let Some(ms) = q.deadline_ms {
                let d = Duration::from_millis(ms);
                deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
            }
        }
        (max_steps, deadline)
    };

    let mut plans = Vec::new();
    for chain_key in group_order {
        let Some(entries) = groups.remove(&chain_key) else {
            continue;
        };
        let samples = entries
            .iter()
            .map(|e| samples_for_tolerance(e.tolerance, config.mcmc.samples, config.max_samples))
            .max()
            .unwrap_or(config.mcmc.samples);
        let (max_steps, deadline) = combine_budgets(&entries);
        plans.push(Plan {
            id: plans.len(),
            work: PlanWork::Shared {
                chain_key,
                seed: mix64(config.engine_seed, chain_key),
                samples,
                entries,
            },
            max_steps,
            deadline,
        });
    }
    for (entry, base, extra_samples) in refines {
        let (max_steps, deadline) = combine_budgets(std::slice::from_ref(&entry));
        plans.push(Plan {
            id: plans.len(),
            work: PlanWork::Refine {
                entry,
                base,
                extra_samples,
            },
            max_steps,
            deadline,
        });
    }

    // Link events: one per planned query, recorded under the *member*
    // query's own trace and naming the plan (and its primary trace)
    // that will serve it. The trace-tree reconstructor joins member
    // traces to execution telemetry through these.
    for plan in &plans {
        let plan_trace = plan.trace();
        let entries: &[PlanEntry] = match &plan.work {
            PlanWork::Shared { entries, .. } => entries,
            PlanWork::Refine { entry, .. } => std::slice::from_ref(entry),
        };
        for e in entries {
            flow_obs::event(|| {
                flow_obs::Event::new("serve.query.planned")
                    .trace(e.trace)
                    .u64("query", e.query_index as u64)
                    .u64("plan", plan.id as u64)
                    .u64("plan_trace", plan_trace)
            });
        }
    }
    BatchPlan {
        early,
        plans,
        traces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow_graph::graph::graph_from_edges;

    fn icm() -> Icm {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        Icm::new(g, vec![0.7, 0.4, 0.5, 0.6, 0.3])
    }

    fn planner_config() -> PlannerConfig {
        PlannerConfig {
            mcmc: McmcConfig {
                samples: 200,
                ..Default::default()
            },
            default_tolerance: 0.05,
            engine_seed: 17,
            max_samples: 100_000,
            shard: 0,
        }
    }

    #[test]
    fn same_source_queries_share_one_plan() {
        let model = icm();
        let mut cache = ServeCache::new(1 << 20);
        let queries = vec![
            FlowQuery::flow(NodeId(0), NodeId(3)),
            FlowQuery::flow(NodeId(0), NodeId(4)),
            FlowQuery::flow(NodeId(1), NodeId(4)),
        ];
        let plan = plan_batch(&model, &mut cache, &planner_config(), &queries);
        assert_eq!(plan.plans.len(), 2, "two sources, two shared chains");
        let sizes: Vec<usize> = plan
            .plans
            .iter()
            .map(|p| match &p.work {
                PlanWork::Shared { entries, .. } => entries.len(),
                PlanWork::Refine { .. } => 0,
            })
            .collect();
        assert_eq!(sizes, vec![2, 1]);
    }

    #[test]
    fn differing_conditions_split_chains() {
        let model = icm();
        let mut cache = ServeCache::new(1 << 20);
        let mut conditioned = FlowQuery::flow(NodeId(0), NodeId(3));
        conditioned.conditions = vec![FlowCondition::requires(NodeId(0), NodeId(1))];
        let queries = vec![FlowQuery::flow(NodeId(0), NodeId(3)), conditioned];
        let plan = plan_batch(&model, &mut cache, &planner_config(), &queries);
        assert_eq!(plan.plans.len(), 2, "conditions change the chain identity");
    }

    #[test]
    fn contradictions_fail_early_without_plans() {
        let model = icm();
        let mut cache = ServeCache::new(1 << 20);
        let mut bad = FlowQuery::flow(NodeId(0), NodeId(3));
        bad.conditions = vec![
            FlowCondition::requires(NodeId(1), NodeId(3)),
            FlowCondition::forbids(NodeId(1), NodeId(3)),
        ];
        let plan = plan_batch(&model, &mut cache, &planner_config(), &[bad]);
        assert!(plan.plans.is_empty());
        assert!(matches!(
            plan.early.first(),
            Some(Some(EarlyResolution::Failed(
                FlowError::GraphInconsistency { .. }
            )))
        ));
    }

    #[test]
    fn seeds_are_batch_composition_independent() {
        let model = icm();
        let cfg = planner_config();
        let solo = plan_batch(
            &model,
            &mut ServeCache::new(1 << 20),
            &cfg,
            &[FlowQuery::flow(NodeId(0), NodeId(3))],
        );
        let batch = plan_batch(
            &model,
            &mut ServeCache::new(1 << 20),
            &cfg,
            &[
                FlowQuery::flow(NodeId(1), NodeId(4)),
                FlowQuery::flow(NodeId(0), NodeId(3)),
            ],
        );
        let seed_of = |bp: &BatchPlan, source: u32| -> u64 {
            bp.plans
                .iter()
                .find_map(|p| match &p.work {
                    PlanWork::Shared { seed, entries, .. }
                        if entries.iter().any(|e| e.key.source == NodeId(source)) =>
                    {
                        Some(*seed)
                    }
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(seed_of(&solo, 0), seed_of(&batch, 0));
    }

    #[test]
    fn trace_ids_are_deterministic_and_unique_per_query() {
        let model = icm();
        let cfg = planner_config();
        let queries = vec![
            FlowQuery::flow(NodeId(0), NodeId(3)),
            FlowQuery::flow(NodeId(0), NodeId(4)),
            // Same canonical key as query 0, different batch position.
            FlowQuery::flow(NodeId(0), NodeId(3)),
        ];
        let a = plan_batch(&model, &mut ServeCache::new(1 << 20), &cfg, &queries);
        let b = plan_batch(&model, &mut ServeCache::new(1 << 20), &cfg, &queries);
        assert_eq!(a.traces, b.traces, "trace ids are a pure batch function");
        let mut uniq = a.traces.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 3, "batch index separates identical keys");
        for p in &a.plans {
            if let PlanWork::Shared { entries, .. } = &p.work {
                for e in entries {
                    assert_eq!(a.traces[e.query_index], e.trace);
                }
            }
        }
    }

    #[test]
    fn samples_scale_with_tolerance() {
        assert_eq!(samples_for_tolerance(0.5, 10, 100_000), 10);
        let tight = samples_for_tolerance(0.01, 10, 1_000_000);
        assert!(tight >= 9604, "0.98^2/0.01^2 = 9604, got {tight}");
        assert_eq!(samples_for_tolerance(0.001, 10, 50_000), 50_000, "capped");
    }
}
