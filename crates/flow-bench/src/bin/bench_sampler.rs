//! `bench_sampler` — the observability overhead baseline.
//!
//! Produces `BENCH_sampler.json` (schema `flow-bench/sampler-v2`, path
//! overridable as the first CLI argument): sampler steps/sec and
//! parallel-estimator wall time with the flow-obs recorder disabled vs
//! enabled, plus a micro-benchmark of the disabled fast path (one
//! relaxed atomic load per call). Two hard acceptance gates (exit 1):
//!
//! * the **enabled**-recorder slowdown of the sampler hot loop stays
//!   within 10% — the hot loop accumulates counters in plain struct
//!   fields and dispatches them once per `run()` batch, so an enabled
//!   recorder costs a handful of dispatched calls per ten thousand
//!   steps, not two per step;
//! * the **disabled**-recorder overhead stays under 5% of step time.
//!
//! The v2 schema separates *counted increments* per step (logical
//! telemetry, ~2/step, unchanged by batching) from *dispatched
//! recorder calls* per step (what actually costs time, ~7 per `run()`
//! batch), so the JSON records both semantics-preserved counting and
//! the real dispatch rate CI ratchets on via `repro perf diff`.
//!
//! Wall-clock timing is the entire point of this binary.
#![allow(clippy::disallowed_methods)]

use flow_bench::scaling_icm;
use flow_graph::NodeId;
use flow_icm::Icm;
use flow_mcmc::{
    multi_chain_flow_guarded, McmcConfig, ProposalKind, PseudoStateSampler, RunBudget,
};
use flow_obs::{Event, MemorySink, Recorder, ScopedRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Edges in the throughput model (Fenwick depth ~11).
const THROUGHPUT_EDGES: usize = 2_000;
/// Edges in the (smaller) parallel-estimator model, so four full
/// burn-in + thinning schedules finish in seconds.
const PARALLEL_EDGES: usize = 200;
/// Retained samples per chain in the parallel benchmark.
const PARALLEL_SAMPLES: usize = 300;
/// Chains in the parallel benchmark.
const PARALLEL_CHAINS: usize = 4;
/// Minimum timed window per throughput measurement.
const MIN_WINDOW_SECS: f64 = 1.5;
/// Iterations for the disabled-call micro-benchmark.
const MICRO_CALLS: u64 = 20_000_000;

/// Runs sampler steps in batches until the timed window is long enough
/// to trust, returning (steps/sec, total steps run).
fn sampler_throughput(icm: &Icm, seed: u64) -> (f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler = PseudoStateSampler::new(icm, ProposalKind::ResultingActivity, &mut rng);
    sampler.run(20_000, &mut rng); // warm-up: tree caches, branch predictors
    let start = Instant::now();
    let mut steps: u64 = 0;
    loop {
        sampler.run(10_000, &mut rng);
        steps += 10_000;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= MIN_WINDOW_SECS {
            return (steps as f64 / elapsed, steps);
        }
    }
}

/// Times one guarded multi-chain run, returning wall milliseconds.
fn parallel_wall_ms(icm: &Icm, sink_node: NodeId) -> f64 {
    let start = Instant::now();
    let est = multi_chain_flow_guarded(
        icm,
        NodeId(0),
        sink_node,
        McmcConfig {
            samples: PARALLEL_SAMPLES,
            ..Default::default()
        },
        PARALLEL_CHAINS,
        7,
        RunBudget::unlimited(),
        1,
        true,
    );
    let ms = start.elapsed().as_secs_f64() * 1e3;
    // Keep the estimate observable so the whole run cannot fold away.
    assert!(est.value.is_finite());
    ms
}

/// Counts every dispatched recorder invocation — events, counters,
/// gauges, histograms, timings — without storing anything, so the
/// measurement itself stays cheap.
#[derive(Default)]
struct CallCountingSink {
    calls: AtomicU64,
}

impl CallCountingSink {
    fn bump(&self) {
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
}

impl Recorder for CallCountingSink {
    fn event(&self, _event: &Event) {
        self.bump();
    }
    fn counter(&self, _name: &'static str, _delta: u64) {
        self.bump();
    }
    fn gauge(&self, _name: &'static str, _value: f64) {
        self.bump();
    }
    fn histogram(&self, _name: &'static str, _value: f64) {
        self.bump();
    }
    fn timing(&self, _name: &'static str, _nanos: u64) {
        self.bump();
    }
}

/// Measures how many recorder calls the sampler actually dispatches
/// per step: the hot loop batches its counters, so this is a handful
/// per `run()` invocation rather than ~2 per step.
fn dispatched_calls_per_step(icm: &Icm, seed: u64) -> f64 {
    const STEPS: u64 = 100_000;
    let sink = Arc::new(CallCountingSink::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler = PseudoStateSampler::new(icm, ProposalKind::ResultingActivity, &mut rng);
    {
        let _r = ScopedRecorder::install(sink.clone());
        // Same batch size the throughput loop uses, so the dispatch
        // amortization matches what the slowdown number measured.
        for _ in 0..STEPS / 10_000 {
            sampler.run(10_000, &mut rng);
        }
    }
    sink.calls.load(Ordering::Relaxed) as f64 / STEPS as f64
}

/// Micro-benchmarks the disabled recorder path: ns per counter call
/// when no recorder is installed (a relaxed atomic load + branch).
fn disabled_ns_per_call() -> f64 {
    assert!(!flow_obs::enabled(), "micro-bench needs the recorder off");
    let start = Instant::now();
    for _ in 0..MICRO_CALLS {
        flow_obs::counter("bench.disabled_probe", 1);
    }
    start.elapsed().as_secs_f64() * 1e9 / MICRO_CALLS as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sampler.json".to_string());

    let throughput_icm = scaling_icm(THROUGHPUT_EDGES, 42);
    let parallel_icm = scaling_icm(PARALLEL_EDGES, 42);
    let parallel_sink = NodeId((parallel_icm.node_count() - 1) as u32);

    eprintln!("[1/6] sampler throughput, recorder disabled ...");
    let (sps_disabled, steps_disabled) = sampler_throughput(&throughput_icm, 1);

    eprintln!("[2/6] sampler throughput, recorder enabled (memory sink) ...");
    let sink = Arc::new(MemorySink::new());
    let (sps_enabled, steps_enabled, counted_increments_per_step) = {
        let _r = ScopedRecorder::install(sink.clone());
        let (sps, steps) = sampler_throughput(&throughput_icm, 1);
        // Logical telemetry per step: every terminal counter the hot
        // loop can hit, summed from the sink's registry. Batching must
        // leave this unchanged (~2/step) — only the dispatch rate drops.
        let total: u64 = [
            "sampler.steps",
            "sampler.lazy_loops",
            "sampler.empty_proposals",
            "sampler.mh_rejects",
            "sampler.condition_rejects",
            "sampler.accepts",
            "sampler.tree_rebuilds",
        ]
        .iter()
        .map(|n| sink.counter_value(n))
        .sum();
        (
            sps,
            steps,
            total as f64 / sink.counter_value("sampler.steps").max(1) as f64,
        )
    };

    eprintln!("[3/6] dispatched recorder calls per step ...");
    let dispatched_per_step = dispatched_calls_per_step(&throughput_icm, 1);

    eprintln!("[4/6] parallel estimator, recorder disabled ...");
    let par_disabled_ms = parallel_wall_ms(&parallel_icm, parallel_sink);

    eprintln!("[5/6] parallel estimator, recorder enabled ...");
    let par_enabled_ms = {
        let _r = ScopedRecorder::install(Arc::new(MemorySink::new()));
        parallel_wall_ms(&parallel_icm, parallel_sink)
    };

    eprintln!("[6/6] disabled fast-path micro-benchmark ...");
    let ns_per_call = disabled_ns_per_call();

    // Disabled overhead: cost of one disabled call times the dispatch
    // rate, as a fraction of step time. With batched counters the
    // disabled path makes at most one `enabled()` probe per flush, so
    // the enabled-run dispatch rate is a conservative upper bound.
    let step_ns_disabled = 1e9 / sps_disabled;
    let disabled_overhead_pct = 100.0 * ns_per_call * dispatched_per_step / step_ns_disabled;
    let enabled_slowdown_pct = 100.0 * (1.0 - sps_enabled / sps_disabled);
    const ENABLED_BUDGET_PCT: f64 = 10.0;
    const DISABLED_BUDGET_PCT: f64 = 5.0;

    let json = format!(
        "{{\n  \"bench\": \"sampler\",\n  \"schema\": \"{schema}\",\n  \"throughput_edges\": {te},\n  \"sampler\": {{\n    \"steps_per_sec_disabled\": {sd:.0},\n    \"steps_per_sec_enabled\": {se:.0},\n    \"steps_timed_disabled\": {std},\n    \"steps_timed_enabled\": {ste},\n    \"enabled_slowdown_pct\": {esp:.2},\n    \"enabled_budget_pct\": {eb},\n    \"enabled_within_budget\": {ewb}\n  }},\n  \"counters\": {{\n    \"counted_increments_per_step\": {cis:.3},\n    \"dispatched_calls_per_step\": {dcs:.5}\n  }},\n  \"parallel_estimator\": {{\n    \"edges\": {pe},\n    \"chains\": {pc},\n    \"samples_per_chain\": {ps},\n    \"wall_ms_disabled\": {pd:.1},\n    \"wall_ms_enabled\": {pen:.1}\n  }},\n  \"disabled_path\": {{\n    \"ns_per_call\": {nc:.3},\n    \"overhead_pct\": {dop:.4},\n    \"budget_pct\": {db},\n    \"within_budget\": {wb}\n  }}\n}}\n",
        schema = flow_core::schema::BENCH_SAMPLER.tag(),
        te = THROUGHPUT_EDGES,
        sd = sps_disabled,
        se = sps_enabled,
        std = steps_disabled,
        ste = steps_enabled,
        esp = enabled_slowdown_pct,
        eb = ENABLED_BUDGET_PCT,
        ewb = enabled_slowdown_pct <= ENABLED_BUDGET_PCT,
        cis = counted_increments_per_step,
        dcs = dispatched_per_step,
        pe = PARALLEL_EDGES,
        pc = PARALLEL_CHAINS,
        ps = PARALLEL_SAMPLES,
        pd = par_disabled_ms,
        pen = par_enabled_ms,
        nc = ns_per_call,
        dop = disabled_overhead_pct,
        db = DISABLED_BUDGET_PCT,
        wb = disabled_overhead_pct <= DISABLED_BUDGET_PCT,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => {
            eprintln!("wrote {out_path}");
            print!("{json}");
        }
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    let mut failed = false;
    if enabled_slowdown_pct > ENABLED_BUDGET_PCT {
        eprintln!(
            "error: enabled-recorder slowdown {enabled_slowdown_pct:.2}% exceeds the {ENABLED_BUDGET_PCT}% budget"
        );
        failed = true;
    }
    if disabled_overhead_pct > DISABLED_BUDGET_PCT {
        eprintln!(
            "error: disabled-recorder overhead {disabled_overhead_pct:.2}% exceeds the {DISABLED_BUDGET_PCT}% budget"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
