//! `bench_stream` — streaming ingest throughput and hot-swap latency.
//!
//! Produces `BENCH_stream.json` (path overridable as the first CLI
//! argument) measuring the flow-stream pipeline end to end on a
//! synthetic event log over the same scaling model `bench_serve` uses:
//!
//! * **ingest** — `Ingestor::push_line` over every simulated event
//!   (parse + validate + buffer), reported as events/sec;
//! * **seal** — `ModelRegistry::seal_epoch` per epoch: the incremental
//!   Beta/characteristic-table update plus the checksummed snapshot
//!   write (tmp + rename);
//! * **recover** — `SnapshotStore::load_latest` over the full store,
//!   the cold-start path a restarted server pays;
//! * **swap** — `ModelRegistry::swap_into` a warm `ServeEngine`,
//!   counting the stale cache entries reclaimed.
//!
//! Acceptance criteria (the binary exits non-zero when violated): the
//! incrementally learned model must be bit-identical to one batch
//! apply of the union delta (same serve fingerprint), recovery must
//! land on the final epoch, the final swap must reclaim the warm
//! cache, and ingest must sustain at least 20k events/sec.
//!
//! Wall-clock timing is the entire point of this binary.
#![allow(clippy::disallowed_methods)]

use flow_bench::scaling_icm;
use flow_graph::{DiGraph, NodeId};
use flow_learn::summary::TimingAssumption;
use flow_mcmc::McmcConfig;
use flow_serve::{FlowQuery, QueryOutcome, ServeEngine};
use flow_stream::{EpochDelta, IngestConfig, Ingestor, ModelRegistry, SnapshotStore, StreamModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Edges in the benchmark model (mirrors `bench_serve`).
const MODEL_EDGES: usize = 600;
/// Simulated cascades in the event log.
const CASCADES: u64 = 1_500;
/// Epochs the cascades are sealed into.
const EPOCHS: usize = 6;
/// Retained samples per chain for the warm-cache serve batch.
const SAMPLES: usize = 1_200;
/// Ingest floor: below this the streaming path has regressed badly.
const MIN_EVENTS_PER_SEC: f64 = 20_000.0;

/// Simulates `CASCADES` cascades over `graph` and renders them as
/// event-log lines, grouped into `EPOCHS` contiguous chunks. Half the
/// cascades keep their attributions; the rest degrade to unattributed
/// observations so both statistic feeds see evidence.
fn epoch_lines(graph: &DiGraph, seed: u64) -> Vec<Vec<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut epochs: Vec<Vec<String>> = vec![Vec::new(); EPOCHS];
    for cascade in 1..=CASCADES {
        let epoch = ((cascade - 1) as usize * EPOCHS) / CASCADES as usize;
        let lines = &mut epochs[epoch];
        let attributed = rng.random_bool(0.5);
        let source = NodeId(rng.random_range(0..graph.node_count() as u32));
        let mut active = vec![source];
        lines.push(format!(
            r#"{{"cascade": {cascade}, "node": {}, "t": 0}}"#,
            source.0
        ));
        let mut frontier = vec![source];
        let mut t = 0u32;
        while let Some(u) = frontier.pop() {
            t += 1;
            for &e in graph.out_edges(u) {
                let (_, v) = graph.endpoints(e);
                if active.contains(&v) || !rng.random_bool(0.4) {
                    continue;
                }
                active.push(v);
                frontier.push(v);
                if attributed {
                    lines.push(format!(
                        r#"{{"cascade": {cascade}, "node": {}, "t": {t}, "parent": {}}}"#,
                        v.0, u.0
                    ));
                } else {
                    lines.push(format!(
                        r#"{{"cascade": {cascade}, "node": {}, "t": {t}}}"#,
                        v.0
                    ));
                }
            }
        }
    }
    epochs
}

/// A small fixed query mix to warm the serve cache between swaps.
fn warm_queries(graph: &DiGraph) -> Vec<FlowQuery> {
    let n = graph.node_count() as u32;
    (0..4)
        .map(|s| FlowQuery::flow(NodeId(s), NodeId(n / 2 + s)))
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_stream.json".to_string());

    let graph = scaling_icm(MODEL_EDGES, 42).graph().clone();
    let epochs = epoch_lines(&graph, 7);
    let total_lines: usize = epochs.iter().map(Vec::len).sum();

    eprintln!(
        "[1/4] ingest: {} events across {} cascades, {} epochs ...",
        total_lines, CASCADES, EPOCHS
    );
    let mut ing = Ingestor::with_graph(graph.clone(), IngestConfig::default());
    let mut deltas: Vec<EpochDelta> = Vec::new();
    let mut ingest_s = 0.0;
    let mut seal_ingest_s = 0.0;
    let mut line_no = 0usize;
    for chunk in &epochs {
        let start = Instant::now();
        for line in chunk {
            line_no += 1;
            if let Err(e) = ing.push_line(line_no, line) {
                eprintln!("error: simulated line {line_no} rejected: {e}");
                std::process::exit(1);
            }
        }
        ingest_s += start.elapsed().as_secs_f64();
        let start = Instant::now();
        deltas.push(ing.seal_epoch());
        seal_ingest_s += start.elapsed().as_secs_f64();
    }
    let accepted = ing.stats().accepted;
    let events_per_sec = accepted as f64 / ingest_s;

    eprintln!("[2/4] seal: incremental apply + checksummed snapshot per epoch ...");
    let dir = std::env::temp_dir().join(format!("bench-stream-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut registry = ModelRegistry::new(
        StreamModel::new(graph.clone(), TimingAssumption::AnyEarlier),
        Some(SnapshotStore::new(dir.clone())),
    );
    let mut engine = match ServeEngine::builder()
        .mcmc(McmcConfig {
            samples: SAMPLES,
            ..Default::default()
        })
        .default_tolerance(1.0)
        .engine_seed(42)
        .build()
    {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("error: invalid engine config: {e}");
            std::process::exit(1);
        }
    };
    let queries = warm_queries(&graph);
    let mut seal_s = 0.0;
    let mut swap_s = 0.0;
    let mut invalidated_final = 0usize;
    for (i, delta) in deltas.iter().enumerate() {
        let start = Instant::now();
        if let Err(e) = registry.seal_epoch(delta) {
            eprintln!("error: sealing epoch {} failed: {e}", i + 1);
            std::process::exit(1);
        }
        seal_s += start.elapsed().as_secs_f64();
        let start = Instant::now();
        let swap = registry.swap_into(&mut engine);
        swap_s += start.elapsed().as_secs_f64();
        invalidated_final = swap.invalidated;
        // Warm the cache on every version so the next swap has stale
        // entries to reclaim — the realistic steady state.
        let icm = registry.model().serving_icm();
        let outcomes = engine.execute_batch(&icm, &queries);
        if !outcomes
            .iter()
            .all(|o| matches!(o, QueryOutcome::Answered(_)))
        {
            eprintln!(
                "error: warm batch on epoch {} was not fully answered",
                i + 1
            );
            std::process::exit(1);
        }
    }
    let seal_mean_ms = seal_s * 1_000.0 / EPOCHS as f64;
    let swap_mean_us = swap_s * 1_000_000.0 / EPOCHS as f64;

    eprintln!("[3/4] recover: load_latest over the full snapshot store ...");
    let store = SnapshotStore::new(dir.clone());
    let start = Instant::now();
    let recovered = match store.load_latest() {
        Ok(Some((_, model))) => model,
        other => {
            eprintln!("error: recovery failed: {other:?}");
            std::process::exit(1);
        }
    };
    let recover_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let recovered_ok = recovered.epoch() == EPOCHS as u64
        && recovered.serve_fingerprint() == registry.model().serve_fingerprint();

    eprintln!("[4/4] equivalence: incremental vs one batch apply of the union ...");
    let mut batch_ing = Ingestor::with_graph(graph.clone(), IngestConfig::default());
    let mut n = 0usize;
    for line in epochs.iter().flatten() {
        n += 1;
        if batch_ing.push_line(n, line).is_err() {
            eprintln!("error: union replay rejected line {n}");
            std::process::exit(1);
        }
    }
    let union = batch_ing.seal_epoch();
    let mut batch_model = StreamModel::new(graph, TimingAssumption::AnyEarlier);
    if let Err(e) = batch_model.apply(&union) {
        eprintln!("error: batch apply failed: {e}");
        std::process::exit(1);
    }
    let bit_identical = batch_model.serve_fingerprint() == registry.model().serve_fingerprint();
    std::fs::remove_dir_all(&dir).ok();

    let pass = bit_identical
        && recovered_ok
        && invalidated_final >= 1
        && events_per_sec >= MIN_EVENTS_PER_SEC;
    let json = format!(
        "{{\n  \"bench\": \"stream\",\n  \"schema\": \"{schema}\",\n  \"model_edges\": {me},\n  \"cascades\": {ca},\n  \"events\": {ev},\n  \"epochs\": {ep},\n  \"ingest\": {{\n    \"wall_s\": {is:.4},\n    \"events_per_sec\": {eps:.0},\n    \"required_events_per_sec\": {req:.0},\n    \"seal_extract_wall_s\": {sis:.4}\n  }},\n  \"seal\": {{\n    \"wall_s\": {ss:.4},\n    \"mean_ms_per_epoch\": {sm:.3}\n  }},\n  \"recover\": {{\n    \"load_latest_ms\": {rm:.3},\n    \"recovered_final_epoch\": {rok}\n  }},\n  \"swap\": {{\n    \"mean_us\": {su:.1},\n    \"invalidated_at_final\": {inv}\n  }},\n  \"equivalence\": {{\n    \"bit_identical\": {bi}\n  }},\n  \"pass\": {pass}\n}}\n",
        schema = flow_core::schema::BENCH_STREAM.tag(),
        me = MODEL_EDGES,
        ca = CASCADES,
        ev = accepted,
        ep = EPOCHS,
        is = ingest_s,
        eps = events_per_sec,
        req = MIN_EVENTS_PER_SEC,
        sis = seal_ingest_s,
        ss = seal_s,
        sm = seal_mean_ms,
        rm = recover_ms,
        rok = recovered_ok,
        su = swap_mean_us,
        inv = invalidated_final,
        bi = bit_identical,
        pass = pass,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => {
            eprintln!("wrote {out_path}");
            print!("{json}");
        }
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    if !bit_identical {
        eprintln!("error: incremental model is not bit-identical to the batch apply");
        std::process::exit(1);
    }
    if !recovered_ok {
        eprintln!("error: recovery did not land on the final epoch's exact state");
        std::process::exit(1);
    }
    if invalidated_final == 0 {
        eprintln!("error: the final hot-swap reclaimed no stale cache entries");
        std::process::exit(1);
    }
    if events_per_sec < MIN_EVENTS_PER_SEC {
        eprintln!(
            "error: ingest sustained {events_per_sec:.0} events/sec, below the {MIN_EVENTS_PER_SEC:.0} floor"
        );
        std::process::exit(1);
    }
}
