//! `bench_serve` — serving-layer speedup and warm-cache cost.
//!
//! Produces `BENCH_serve.json` (path overridable as the first CLI
//! argument) comparing three ways of answering the same query mix
//! (several sources, many sinks each) against one synthetic ICM:
//!
//! * **naive** — one `FlowEstimator::estimate_flow` per query; every
//!   query pays its own burn-in and its own retained samples;
//! * **batched** — one `ServeEngine::execute_batch`; same-source
//!   queries share a chain, so burn-in and per-sample reach-set costs
//!   amortize across the group;
//! * **warm** — the identical batch again on the same engine; every
//!   answer comes from the estimate cache.
//!
//! A fourth section prices the resilience layer on a clean run: the
//! cold batch plus a cache save/load cycle with retry, breaker, and
//! entry checksums disabled versus fully enabled (min of 2 reps each).
//!
//! A fifth section measures sharded serving on a multi-community
//! workload: the same single-community query mix on an unsharded
//! engine (chains walk the full `m`-edge multinomial) versus a
//! `.shards(K)` engine (each query routes to its community's shard and
//! walks `m/K` edges, shrinking burn-in and thinning linearly). The
//! batched-throughput speedup is gated; the per-step `O(log m)` win is
//! reported separately, ungated.
//!
//! Acceptance criteria (the binary exits non-zero when violated):
//! batched throughput must be at least 2x naive, the warm batch must
//! spend exactly zero sampler steps (checked via the flow-obs
//! `sampler.steps` counter, not wall time), the fault-free resilience
//! overhead must stay within 5%, and sharded batched throughput must
//! be at least 2x unsharded on the multi-community mix (with every
//! query actually routed and agreeing within tolerance).
//!
//! The result file (schema [`flow_core::schema::BENCH_SERVE`]) embeds a
//! `runtime_stats` section: the [`flow_obs::StatsAggregator`] snapshot
//! (schema `flow-obs/stats-v1`, the same document `repro serve
//! --stats-out` writes) aggregated over the cold and warm batches, so
//! the bench records latency quantiles, cache hit ratio, shed/retry
//! counts with the exact shape the serving runtime reports.
//!
//! Wall-clock timing is the entire point of this binary.
#![allow(clippy::disallowed_methods)]

use flow_bench::{multi_community_icm, scaling_icm};
use flow_graph::NodeId;
use flow_icm::Icm;
use flow_mcmc::{FlowEstimator, McmcConfig};
use flow_obs::{MemorySink, MultiSink, Recorder, ScopedRecorder, StatsAggregator};
use flow_serve::{
    BreakerConfig, ExecutorConfig, FlowQuery, QueryOutcome, RetryPolicy, ServeCache, ServeConfig,
    ServeEngine,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Edges in the benchmark model.
const MODEL_EDGES: usize = 600;
/// Distinct flow sources in the query mix.
const SOURCES: u32 = 4;
/// Sinks queried per source.
const SINKS_PER_SOURCE: u32 = 8;
/// Retained samples per chain.
const SAMPLES: usize = 4_000;
/// Communities (= shards) in the sharded section's model.
const COMMUNITIES: u32 = 4;
/// Edges per community; total model is `COMMUNITIES * COMMUNITY_EDGES`.
const COMMUNITY_EDGES: usize = 300;
/// Sinks queried per community in the sharded section.
const COMMUNITY_SINKS: usize = 6;
/// Retained samples per chain in the sharded section.
const SHARD_SAMPLES: usize = 2_000;

fn build_engine(config: ServeConfig) -> ServeEngine {
    match ServeEngine::builder().config(config).build() {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("error: invalid engine config: {e}");
            std::process::exit(1);
        }
    }
}

fn query_mix(icm: &Icm) -> Vec<FlowQuery> {
    let n = icm.node_count() as u32;
    let mut queries = Vec::new();
    for s in 0..SOURCES {
        for k in 0..SINKS_PER_SOURCE {
            // Spread sinks across the node range, skipping the source.
            let sink = (s + 1 + k * (n / (SINKS_PER_SOURCE + 1))).min(n - 1);
            queries.push(FlowQuery::flow(NodeId(s), NodeId(sink)));
        }
    }
    queries
}

/// Per-community flow queries whose sinks are provably reachable from
/// the community's first node, so every query routes to exactly one
/// shard and keeps its chain busy on both serving paths.
fn community_mix(icm: &Icm) -> Vec<FlowQuery> {
    let n_each = icm.node_count() as u32 / COMMUNITIES;
    let graph = icm.graph();
    let mut queries = Vec::new();
    for c in 0..COMMUNITIES {
        let base = NodeId(c * n_each);
        let reach = flow_graph::reachable(graph, &[base]);
        let sinks: Vec<NodeId> = (c * n_each..(c + 1) * n_each)
            .map(NodeId)
            .filter(|&v| v != base && reach.contains(v))
            .take(COMMUNITY_SINKS)
            .collect();
        for sink in sinks {
            queries.push(FlowQuery::flow(base, sink));
        }
    }
    queries
}

fn naive_wall_s(icm: &Icm, queries: &[FlowQuery], config: McmcConfig) -> (f64, Vec<f64>) {
    let estimator = FlowEstimator::new(icm, config);
    let start = Instant::now();
    let estimates = queries
        .iter()
        .map(|q| {
            let flow_serve::SharedTarget::Sink(sink) = q.target else {
                unreachable!("the mix is sink-only")
            };
            let mut rng = StdRng::seed_from_u64(q.source.0 as u64 * 31 + sink.0 as u64);
            estimator.estimate_flow(q.source, sink, &mut rng)
        })
        .collect();
    (start.elapsed().as_secs_f64(), estimates)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let icm = scaling_icm(MODEL_EDGES, 42);
    let queries = query_mix(&icm);
    let mcmc = McmcConfig {
        samples: SAMPLES,
        ..Default::default()
    };

    eprintln!(
        "[1/5] naive: {} independent estimates ({} samples each) ...",
        queries.len(),
        SAMPLES
    );
    let (naive_s, naive_estimates) = naive_wall_s(&icm, &queries, mcmc);

    eprintln!("[2/5] batched: one execute_batch over the same mix ...");
    // The aggregator listens to both the cold and the warm batch so the
    // embedded runtime_stats section covers a hit-free and an all-hit
    // window; its per-event cost is part of what the speedup measures.
    let agg = Arc::new(StatsAggregator::new());
    let mut engine = build_engine(ServeConfig {
        mcmc,
        // Tolerance is not under test here; keep the sample budget
        // identical to the naive loop's.
        default_tolerance: 1.0,
        engine_seed: 42,
        ..Default::default()
    });
    let start = Instant::now();
    let cold = {
        let _r = ScopedRecorder::install(agg.clone());
        engine.execute_batch(&icm, &queries)
    };
    let batched_s = start.elapsed().as_secs_f64();
    agg.roll_windows();

    // Sanity: the two strategies answer the same questions.
    for ((q, outcome), naive) in queries.iter().zip(&cold).zip(&naive_estimates) {
        let QueryOutcome::Answered(a) = outcome else {
            eprintln!("error: batched query {q:?} was not answered");
            std::process::exit(1);
        };
        if (a.estimate - naive).abs() > 0.05 {
            eprintln!(
                "error: batched estimate {} disagrees with naive {} for {q:?}",
                a.estimate, naive
            );
            std::process::exit(1);
        }
    }

    eprintln!("[3/5] warm: the identical batch served from cache ...");
    let sink = Arc::new(MemorySink::new());
    let start = Instant::now();
    let warm = {
        let sinks: Vec<Arc<dyn Recorder>> = vec![sink.clone(), agg.clone()];
        let _r = ScopedRecorder::install(Arc::new(MultiSink::new(sinks)));
        engine.execute_batch(&icm, &queries)
    };
    let warm_s = start.elapsed().as_secs_f64();
    agg.roll_windows();
    let warm_steps = sink.counter_value("sampler.steps");
    let warm_hits = warm
        .iter()
        .filter(|o| {
            matches!(
                o,
                QueryOutcome::Answered(a) if a.served == flow_serve::Served::CacheHit
            )
        })
        .count();

    eprintln!("[4/5] resilience overhead: retry+breaker+checksums off vs on ...");
    let dir = std::env::temp_dir().join(format!("bench-serve-resilience-{}", std::process::id()));
    let run_with_resilience = |enabled: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            std::fs::remove_dir_all(&dir).ok();
            let base = ServeConfig {
                mcmc,
                default_tolerance: 1.0,
                engine_seed: 42,
                ..Default::default()
            };
            let config = if enabled {
                base
            } else {
                ServeConfig {
                    executor: ExecutorConfig {
                        retry: RetryPolicy::none(),
                        admission_step_budget: 0,
                        ..Default::default()
                    },
                    breaker: BreakerConfig::disabled(),
                    ..base
                }
            };
            let mut engine = build_engine(config);
            let start = Instant::now();
            let outcomes = engine.execute_batch(&icm, &queries);
            let saved = engine.cache().save_to_dir_opts(&dir, enabled);
            let loaded = saved.and_then(|()| ServeCache::load_from_dir(&dir, 8 << 20));
            let elapsed = start.elapsed().as_secs_f64();
            let all_answered = outcomes
                .iter()
                .all(|o| matches!(o, QueryOutcome::Answered(_)));
            match loaded {
                Ok(cache) if all_answered && cache.len() == engine.cache().len() => {}
                _ => {
                    eprintln!("error: resilience rep (enabled={enabled}) did not round-trip");
                    std::process::exit(1);
                }
            }
            best = best.min(elapsed);
        }
        best
    };
    let bare_s = run_with_resilience(false);
    let resilient_s = run_with_resilience(true);
    std::fs::remove_dir_all(&dir).ok();
    let overhead_pct = (resilient_s - bare_s) / bare_s * 100.0;

    eprintln!(
        "[5/5] sharded: {COMMUNITIES}-community mix, unsharded vs --shards {COMMUNITIES} ..."
    );
    let community_icm = multi_community_icm(COMMUNITIES, COMMUNITY_EDGES, 7);
    let shard_queries = community_mix(&community_icm);
    let shard_config = |shards: u32| ServeConfig {
        mcmc: McmcConfig {
            samples: SHARD_SAMPLES,
            ..Default::default()
        },
        default_tolerance: 1.0,
        engine_seed: 42,
        shards,
        ..Default::default()
    };

    let mut flat = build_engine(shard_config(1));
    let start = Instant::now();
    let flat_outcomes = flat.execute_batch(&community_icm, &shard_queries);
    let flat_s = start.elapsed().as_secs_f64();

    let mut sharded = build_engine(shard_config(COMMUNITIES));
    let start = Instant::now();
    let sharded_outcomes = sharded.execute_batch(&community_icm, &shard_queries);
    let sharded_s = start.elapsed().as_secs_f64();

    // Same questions, same distribution: chains differ (shard slots
    // enter the chain keys), so the answers are independent draws that
    // must agree within estimator tolerance.
    let mut max_gap = 0.0f64;
    for ((q, f), s) in shard_queries
        .iter()
        .zip(&flat_outcomes)
        .zip(&sharded_outcomes)
    {
        let (QueryOutcome::Answered(a), QueryOutcome::Answered(b)) = (f, s) else {
            eprintln!("error: sharded-section query {q:?} was not answered on both paths");
            std::process::exit(1);
        };
        max_gap = max_gap.max((a.estimate - b.estimate).abs());
    }
    if max_gap > 0.08 {
        eprintln!("error: sharded answers diverge from unsharded by {max_gap:.3} (> 0.08)");
        std::process::exit(1);
    }
    // Every query must actually take the sharded path — a fallback to
    // the global engine would make the comparison vacuous.
    let routed: u64 = sharded.shard_stats().iter().map(|s| s.queries).sum();
    if routed != shard_queries.len() as u64 {
        eprintln!(
            "error: only {routed}/{} queries took the sharded path",
            shard_queries.len()
        );
        std::process::exit(1);
    }
    let flat_steps = flat.stats().steps;
    let sharded_steps = sharded.stats().steps;
    let shard_n = shard_queries.len() as f64;
    let shard_speedup = flat_s / sharded_s;
    // The sub-multinomial's O(log m) per-proposal win, separated from
    // the (dominant) linear shrink in burn-in and thinning steps.
    let per_step_ns_flat = flat_s / flat_steps.max(1) as f64 * 1e9;
    let per_step_ns_sharded = sharded_s / sharded_steps.max(1) as f64 * 1e9;

    let n = queries.len() as f64;
    let naive_qps = n / naive_s;
    let batched_qps = n / batched_s;
    let warm_qps = n / warm_s;
    let speedup = naive_s / batched_s;

    // The runtime snapshot, re-indented to sit as a nested object.
    let stats_embedded = agg
        .snapshot()
        .render_json()
        .trim_end()
        .replace('\n', "\n  ");

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"schema\": \"{schema}\",\n  \"model_edges\": {me},\n  \"queries\": {q},\n  \"samples_per_chain\": {sp},\n  \"naive\": {{\n    \"wall_s\": {ns:.3},\n    \"qps\": {nq:.1}\n  }},\n  \"batched\": {{\n    \"wall_s\": {bs:.3},\n    \"qps\": {bq:.1},\n    \"speedup_vs_naive\": {su:.2},\n    \"required_speedup\": 2.0\n  }},\n  \"warm_cache\": {{\n    \"wall_s\": {ws:.4},\n    \"qps\": {wq:.1},\n    \"cache_hits\": {wh},\n    \"sampler_steps\": {wst}\n  }},\n  \"resilience\": {{\n    \"bare_wall_s\": {rb:.3},\n    \"resilient_wall_s\": {rr:.3},\n    \"overhead_pct\": {ro:.2},\n    \"budget_pct\": 5.0\n  }},\n  \"sharded\": {{\n    \"communities\": {sc},\n    \"model_edges\": {sme},\n    \"queries\": {sq},\n    \"samples_per_chain\": {ssp},\n    \"routed\": {srt},\n    \"unsharded_wall_s\": {sfs:.3},\n    \"unsharded_qps\": {sfq:.1},\n    \"unsharded_steps\": {sfst},\n    \"sharded_wall_s\": {sss:.3},\n    \"sharded_qps\": {ssq:.1},\n    \"sharded_steps\": {ssst},\n    \"speedup_vs_unsharded\": {ssu:.2},\n    \"required_speedup\": 2.0,\n    \"per_step_ns_unsharded\": {spf:.1},\n    \"per_step_ns_sharded\": {sps:.1},\n    \"per_step_speedup\": {spw:.2},\n    \"max_abs_disagreement\": {sdg:.4}\n  }},\n  \"runtime_stats\": {rs},\n  \"pass\": {pass}\n}}\n",
        schema = flow_core::schema::BENCH_SERVE.tag(),
        me = MODEL_EDGES,
        rs = stats_embedded,
        q = queries.len(),
        sp = SAMPLES,
        ns = naive_s,
        nq = naive_qps,
        bs = batched_s,
        bq = batched_qps,
        su = speedup,
        ws = warm_s,
        wq = warm_qps,
        wh = warm_hits,
        wst = warm_steps,
        rb = bare_s,
        rr = resilient_s,
        ro = overhead_pct,
        sc = COMMUNITIES,
        sme = community_icm.edge_count(),
        sq = shard_queries.len(),
        ssp = SHARD_SAMPLES,
        srt = routed,
        sfs = flat_s,
        sfq = shard_n / flat_s,
        sfst = flat_steps,
        sss = sharded_s,
        ssq = shard_n / sharded_s,
        ssst = sharded_steps,
        ssu = shard_speedup,
        spf = per_step_ns_flat,
        sps = per_step_ns_sharded,
        spw = per_step_ns_flat / per_step_ns_sharded,
        sdg = max_gap,
        pass = speedup >= 2.0
            && warm_steps == 0
            && overhead_pct <= 5.0
            && shard_speedup >= 2.0,
    );
    match std::fs::write(&out_path, &json) {
        Ok(()) => {
            eprintln!("wrote {out_path}");
            print!("{json}");
        }
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    if speedup < 2.0 {
        eprintln!("error: batched speedup {speedup:.2}x is below the 2x requirement");
        std::process::exit(1);
    }
    if warm_steps != 0 {
        eprintln!("error: warm batch spent {warm_steps} sampler steps; cache hits must spend none");
        std::process::exit(1);
    }
    if warm_hits != queries.len() {
        eprintln!(
            "error: only {warm_hits}/{} warm queries were cache hits",
            queries.len()
        );
        std::process::exit(1);
    }
    if overhead_pct > 5.0 {
        eprintln!("error: resilience overhead {overhead_pct:.2}% exceeds the 5% budget");
        std::process::exit(1);
    }
    if shard_speedup < 2.0 {
        eprintln!(
            "error: sharded speedup {shard_speedup:.2}x is below the 2x requirement \
             (unsharded {flat_s:.3}s / sharded {sharded_s:.3}s)"
        );
        std::process::exit(1);
    }
}
