//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches regenerate the paper's performance claims:
//!
//! * `mh_sampler` — §IV-C: "on a small sample from Twitter with around
//!   6K users and 14K edges, our sampler takes 27 milliseconds per
//!   output sample (0.13 milliseconds per Markov-Chain update)". We
//!   measure the same two quantities at the same scale and verify the
//!   `O(log m)` chain-update scaling.
//! * `fig6_learning_cost` — Fig. 6's per-sample cost comparison (ours
//!   vs Goyal).
//! * `summarization` — §V-C: the summary is `O(min(2ⁿ, m))` wide and
//!   makes likelihood evaluation independent of the object count.
//! * `exact_vs_mh` — exponential exact evaluation vs sampling.
//! * `ablation_proposal` / `ablation_weight_tree` — the design choices
//!   called out in DESIGN.md (proposal-weight convention; Fenwick tree
//!   vs linear-scan sampling).

use flow_graph::{GraphBuilder, NodeId};
use flow_icm::Icm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Twitter-scale model matching the paper's timing claim: ~6K nodes,
/// ~14K edges, moderate activation probabilities.
pub fn twitter_scale_icm(seed: u64) -> Icm {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = flow_graph::generate::uniform_edges(&mut rng, 6_000, 14_000);
    let probs = (0..graph.edge_count())
        .map(|_| rng.random_range(0.05..0.6))
        .collect();
    Icm::new(graph, probs)
}

/// A model with `m` edges on `m/2` nodes for scaling sweeps.
pub fn scaling_icm(m: usize, seed: u64) -> Icm {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (m / 2).max(4);
    let graph = flow_graph::generate::uniform_edges(&mut rng, n, m);
    let probs = (0..graph.edge_count())
        .map(|_| rng.random_range(0.05..0.6))
        .collect();
    Icm::new(graph, probs)
}

/// `communities` disjoint uniform-edge communities of roughly `m_each`
/// edges each — the multi-community workload sharded serving targets:
/// every community is its own weak component, so
/// `flow_graph::partition_edges` keeps it whole on one shard and a
/// single-community query's chain walks a sub-multinomial of
/// `~m_each << m` edges.
pub fn multi_community_icm(communities: u32, m_each: usize, seed: u64) -> Icm {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_each = (m_each / 2).max(4);
    let mut builder = GraphBuilder::new(n_each * communities as usize);
    let mut probs = Vec::new();
    for c in 0..communities {
        let sub = flow_graph::generate::uniform_edges(&mut rng, n_each, m_each);
        let base = (c as usize * n_each) as u32;
        for e in sub.edges() {
            let (u, v) = sub.endpoints(e);
            if builder
                .add_edge(NodeId(base + u.0), NodeId(base + v.0))
                .is_ok()
            {
                probs.push(rng.random_range(0.05..0.6));
            }
        }
    }
    Icm::new(builder.build(), probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_expected_shapes() {
        let icm = scaling_icm(500, 1);
        assert_eq!(icm.edge_count(), 500);
        assert_eq!(icm.node_count(), 250);
    }

    #[test]
    fn communities_are_disjoint_components() {
        let icm = multi_community_icm(3, 60, 9);
        let p = flow_graph::partition_edges(icm.graph(), 3);
        // Whole components per shard: each shard holds ~one community.
        let counts = p.edge_counts();
        assert_eq!(counts.iter().sum::<usize>(), icm.edge_count());
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        // No edge crosses a community boundary of 30 nodes.
        let g = icm.graph();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert_eq!(u.0 / 30, v.0 / 30, "edge {e:?} crosses communities");
        }
    }
}
