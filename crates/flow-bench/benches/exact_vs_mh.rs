//! The motivation for §III: exact flow evaluation is exponential in
//! the edge count while Metropolis–Hastings sampling is not. This bench
//! shows the exact evaluator's cost doubling per edge against the flat
//! per-sample cost of MH and naive Monte-Carlo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flow_graph::NodeId;
use flow_icm::exact::{enumerate_flow_probability, monte_carlo_flow_probability};
use flow_icm::Icm;
use flow_mcmc::{FlowEstimator, McmcConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn model(m: usize, seed: u64) -> Icm {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (m / 2).max(4);
    let graph = flow_graph::generate::uniform_edges(&mut rng, n, m);
    let probs = (0..m).map(|_| rng.random_range(0.2..0.8)).collect();
    Icm::new(graph, probs)
}

fn exact_exponential(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_enumeration");
    for m in [12usize, 16, 20] {
        let icm = model(m, m as u64);
        let sink = NodeId((icm.node_count() - 1) as u32);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(enumerate_flow_probability(&icm, NodeId(0), sink)))
        });
    }
    group.finish();
}

fn sampling_flat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_estimators");
    for m in [20usize, 200, 2_000] {
        let icm = model(m, 100 + m as u64);
        let sink = NodeId((icm.node_count() - 1) as u32);
        group.bench_with_input(BenchmarkId::new("mh_500_samples", m), &m, |b, _| {
            let mut rng = StdRng::seed_from_u64(5);
            let est = FlowEstimator::new(
                &icm,
                McmcConfig {
                    samples: 500,
                    ..Default::default()
                },
            );
            b.iter(|| black_box(est.estimate_flow(NodeId(0), sink, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("naive_mc_500", m), &m, |b, _| {
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| {
                black_box(monte_carlo_flow_probability(
                    &icm,
                    NodeId(0),
                    sink,
                    500,
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = exact_exponential, sampling_flat
);
criterion_main!(benches);
