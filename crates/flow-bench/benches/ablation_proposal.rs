//! Ablation: the two proposal-weight conventions found in the paper
//! (prose vs printed formulas — see `flow-mcmc`'s module docs). Both
//! target the same distribution; this bench compares their raw step
//! cost and reports their acceptance rates (higher acceptance = better
//! mixing per step for this chain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flow_bench::scaling_icm;
use flow_mcmc::sampler::{ProposalKind, PseudoStateSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn proposal_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("proposal_kind_step");
    for kind in [
        ProposalKind::ResultingActivity,
        ProposalKind::CurrentActivity,
    ] {
        let icm = scaling_icm(8_000, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let mut sampler = PseudoStateSampler::new(&icm, kind, &mut rng);
        sampler.run(20_000, &mut rng);
        println!(
            "proposal {:?}: acceptance rate {:.3} after 20k steps",
            kind,
            sampler.acceptance_rate()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, _| b.iter(|| black_box(sampler.step(&mut rng))),
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = proposal_kinds
);
criterion_main!(benches);
