//! Fig. 6 as a Criterion bench: the per-sample cost of the joint-Bayes
//! learner against one Goyal credit pass, across evidence sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flow_graph::NodeId;
use flow_learn::goyal::goyal_credit;
use flow_learn::joint_bayes::{JointBayes, JointBayesConfig};
use flow_learn::summary::{SinkSummary, TimingAssumption};
use flow_learn::synthetic::{star_episodes, StarConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fixtures(parents: usize, objects: usize, seed: u64) -> SinkSummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let probs: Vec<f64> = (0..parents)
        .map(|j| 0.2 + 0.6 * j as f64 / parents as f64)
        .collect();
    let episodes = star_episodes(&StarConfig::new(probs), objects, &mut rng);
    SinkSummary::build(
        NodeId(parents as u32),
        (0..parents as u32).map(NodeId).collect(),
        &episodes,
        TimingAssumption::AnyEarlier,
    )
}

fn single_sample() -> JointBayesConfig {
    JointBayesConfig {
        samples: 1,
        burn_in_sweeps: 0,
        thin_sweeps: 1,
        ..Default::default()
    }
}

fn learning_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_learning_cost");
    for &objects in &[1_000usize, 10_000, 100_000] {
        let summary = fixtures(10, objects, objects as u64);
        // Our core computation: one posterior sample on the summary.
        group.bench_with_input(
            BenchmarkId::new("ours_one_sample", objects),
            &objects,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| {
                    black_box(JointBayes::new(single_sample()).sample_posterior(&summary, &mut rng))
                })
            },
        );
        // Goyal's pass over the summary (its natural single "sample").
        group.bench_with_input(BenchmarkId::new("goyal_pass", objects), &objects, |b, _| {
            b.iter(|| black_box(goyal_credit(&summary)))
        });
    }
    group.finish();
}

fn summarize_cost(c: &mut Criterion) {
    // The one-off preprocessing Fig. 6(b) includes in its dots.
    let mut group = c.benchmark_group("fig6_summarize");
    for &objects in &[1_000usize, 10_000, 100_000] {
        let mut rng = StdRng::seed_from_u64(9);
        let probs: Vec<f64> = (0..10).map(|j| 0.2 + 0.06 * j as f64).collect();
        let episodes = star_episodes(&StarConfig::new(probs), objects, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(objects), &objects, |b, _| {
            b.iter(|| {
                black_box(SinkSummary::build(
                    NodeId(10),
                    (0..10).map(NodeId).collect(),
                    &episodes,
                    TimingAssumption::AnyEarlier,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3));
    targets = learning_cost, summarize_cost
);
criterion_main!(benches);
