//! Ablation: the §III-C "search tree". The Fenwick tree gives
//! `O(log m)` weighted sampling and updates; a naive linear scan is
//! `O(m)` per draw. This bench quantifies the crossover that justifies
//! the tree for graph-scale edge counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flow_stats::WeightTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn linear_sample(weights: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let target = rng.random::<f64>() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if target < acc {
            return i;
        }
    }
    weights.len() - 1
}

fn weighted_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_sampling");
    for m in [100usize, 2_000, 50_000] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let weights: Vec<f64> = (0..m).map(|_| rng.random::<f64>()).collect();
        let tree = WeightTree::new(&weights);
        let total: f64 = weights.iter().sum();
        group.bench_with_input(BenchmarkId::new("fenwick", m), &m, |b, _| {
            let mut r = StdRng::seed_from_u64(1);
            b.iter(|| black_box(tree.sample(&mut r)))
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", m), &m, |b, _| {
            let mut r = StdRng::seed_from_u64(1);
            b.iter(|| black_box(linear_sample(&weights, total, &mut r)))
        });
    }
    group.finish();
}

fn sample_and_update(c: &mut Criterion) {
    // The sampler's actual inner loop: draw an index, then update its
    // weight (an accepted flip).
    let mut group = c.benchmark_group("sample_then_update");
    for m in [2_000usize, 50_000] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let weights: Vec<f64> = (0..m).map(|_| rng.random::<f64>()).collect();
        let mut tree = WeightTree::new(&weights);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            let mut r = StdRng::seed_from_u64(2);
            b.iter(|| {
                let i = tree.sample(&mut r).expect("positive total");
                let w = tree.get(i);
                tree.update(i, 1.0 - w);
                black_box(i)
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = weighted_sampling, sample_and_update
);
criterion_main!(benches);
