//! §IV-C timing claims: per-chain-update and per-output-sample cost at
//! Twitter scale (≈6K users / 14K edges), plus the `O(log m)` update
//! scaling across model sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flow_bench::{scaling_icm, twitter_scale_icm};
use flow_graph::NodeId;
use flow_mcmc::sampler::{ProposalKind, PseudoStateSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn chain_update_twitter_scale(c: &mut Criterion) {
    let icm = twitter_scale_icm(1);
    let mut rng = StdRng::seed_from_u64(2);
    let mut sampler = PseudoStateSampler::new(&icm, ProposalKind::ResultingActivity, &mut rng);
    sampler.run(5_000, &mut rng); // settle in
    let mut group = c.benchmark_group("mh_twitter_scale");
    group.throughput(Throughput::Elements(1));
    // The paper reports 0.13 ms per chain update at this scale.
    group.bench_function("chain_update_6k_nodes_14k_edges", |b| {
        b.iter(|| black_box(sampler.step(&mut rng)))
    });
    // The paper reports 27 ms per output sample (update burst + flow test).
    let thin = 200;
    group.bench_function("output_sample_thin200_plus_reach", |b| {
        b.iter(|| {
            sampler.run(thin, &mut rng);
            black_box(sampler.carries_flow(NodeId(0), NodeId(5_999)))
        })
    });
    group.finish();
}

fn chain_update_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mh_update_scaling");
    for m in [500usize, 2_000, 8_000, 32_000, 128_000] {
        let icm = scaling_icm(m, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut sampler = PseudoStateSampler::new(&icm, ProposalKind::ResultingActivity, &mut rng);
        sampler.run(2_000, &mut rng);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(sampler.step(&mut rng)))
        });
    }
    group.finish();
}

fn conditional_step_overhead(c: &mut Criterion) {
    // Conditions add an O(m) reachability test per accepted proposal.
    let icm = scaling_icm(2_000, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let conditions = vec![flow_icm::FlowCondition::requires(NodeId(0), NodeId(1))];
    let mut plain = PseudoStateSampler::new(&icm, ProposalKind::ResultingActivity, &mut rng);
    let mut cond = PseudoStateSampler::with_conditions(
        &icm,
        ProposalKind::ResultingActivity,
        conditions,
        &mut rng,
    )
    .expect("satisfiable");
    plain.run(1_000, &mut rng);
    cond.run(1_000, &mut rng);
    let mut group = c.benchmark_group("mh_conditional_overhead");
    group.bench_function("marginal_step_m2000", |b| {
        b.iter(|| black_box(plain.step(&mut rng)))
    });
    group.bench_function("conditional_step_m2000", |b| {
        b.iter(|| black_box(cond.step(&mut rng)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = chain_update_twitter_scale, chain_update_scaling, conditional_step_overhead
);
criterion_main!(benches);
