//! §V-C complexity claim: summaries have width `ω = O(min(2ⁿ, m))`
//! ("in practice it is much less"), so the model-fitness computation is
//! `O(nω)` instead of `O(nm)` — the likelihood cost must *not* grow
//! with the object count once summarized.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flow_graph::NodeId;
use flow_learn::summary::{Episode, SinkSummary, TimingAssumption};
use flow_learn::synthetic::{star_episodes, StarConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn make(parents: usize, objects: usize) -> (Vec<Episode>, SinkSummary, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(objects as u64);
    let probs: Vec<f64> = (0..parents)
        .map(|j| 0.15 + 0.7 * j as f64 / parents as f64)
        .collect();
    let episodes = star_episodes(&StarConfig::new(probs.clone()), objects, &mut rng);
    let summary = SinkSummary::build(
        NodeId(parents as u32),
        (0..parents as u32).map(NodeId).collect(),
        &episodes,
        TimingAssumption::AnyEarlier,
    );
    (episodes, summary, probs)
}

/// Per-episode Bernoulli likelihood (the unsummarized O(nm) evaluation).
fn raw_ln_likelihood(episodes: &[Episode], parents: usize, probs: &[f64]) -> f64 {
    let sink = NodeId(parents as u32);
    let mut acc = 0.0;
    for ep in episodes {
        let mut miss = 1.0;
        let mut any = false;
        for (j, &p_j) in probs.iter().enumerate().take(parents) {
            let p_active = match (
                ep.activation_time(NodeId(j as u32)),
                ep.activation_time(sink),
            ) {
                (Some(tp), Some(t)) => tp < t,
                (Some(_), None) => true,
                _ => false,
            };
            if p_active {
                any = true;
                miss *= 1.0 - p_j;
            }
        }
        if !any {
            continue;
        }
        let p = 1.0 - miss;
        acc += if ep.is_active(sink) {
            p.ln()
        } else {
            (1.0 - p).ln()
        };
    }
    acc
}

fn likelihood_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("likelihood_eval");
    for &objects in &[1_000usize, 8_000, 64_000] {
        let (episodes, summary, probs) = make(8, objects);
        group.bench_with_input(BenchmarkId::new("summarized", objects), &objects, |b, _| {
            b.iter(|| black_box(summary.ln_likelihood(&probs)))
        });
        group.bench_with_input(BenchmarkId::new("raw", objects), &objects, |b, _| {
            b.iter(|| black_box(raw_ln_likelihood(&episodes, 8, &probs)))
        });
    }
    group.finish();
}

fn summary_width_report(c: &mut Criterion) {
    // Not a timing bench per se: document ω vs m in the bench output.
    let mut group = c.benchmark_group("summary_width");
    for &objects in &[1_000usize, 64_000] {
        let (_, summary, probs) = make(12, objects);
        println!(
            "summary_width: parents=12 objects={objects} width={} (2^n = 4096)",
            summary.width()
        );
        group.bench_with_input(BenchmarkId::from_parameter(objects), &objects, |b, _| {
            b.iter(|| black_box(summary.ln_likelihood(&probs)))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3));
    targets = likelihood_scaling, summary_width_report
);
criterion_main!(benches);
