//! Hashtag/URL adoption episodes → unattributed evidence (§V-D).
//!
//! For finer-granularity objects the crawl only shows *who mentioned
//! what, when* — unattributed evidence. This module scans the visible
//! tweets for hashtag and URL tokens and produces one
//! [`flow_learn::Episode`] per object (a user's activation time is the
//! time of their first mention).
//!
//! Because "hashtags and URLs can come from outside of Twitter", the
//! paper adds an **omnipotent user** that every user follows and that is
//! "the true originator of all tweets": [`with_omnipotent_user`] builds
//! the augmented graph and [`episodes_for_objects`] activates the
//! omnipotent node at time 0 in every episode so exogenous adoptions
//! have a candidate cause.

use crate::corpus::Corpus;
use crate::parse::parse_tweet;
use flow_graph::{DiGraph, GraphBuilder, NodeId};
use flow_learn::Episode;
use std::collections::HashMap;

/// The kind of propagated object to extract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectKind {
    /// `#hashtags` (low entropy, often exogenous).
    Hashtag,
    /// Shortened URLs (high entropy, endogenous).
    Url,
}

/// Extracted episodes for one object kind.
#[derive(Clone, Debug)]
pub struct ObjectEpisodes {
    /// Which kind was extracted.
    pub kind: ObjectKind,
    /// `(token, episode)` pairs, sorted by token for determinism.
    pub episodes: Vec<(String, Episode)>,
}

/// Scans visible tweets and builds per-object adoption episodes.
///
/// When `omnipotent` is `Some(node)`, that node is activated at time 0
/// in every episode (all observed adopter times are shifted by +1 so
/// the omnipotent user is strictly earlier).
pub fn episodes_for_objects(
    corpus: &Corpus,
    kind: ObjectKind,
    omnipotent: Option<NodeId>,
) -> ObjectEpisodes {
    // token -> user -> earliest mention time
    let mut mentions: HashMap<String, HashMap<NodeId, u32>> = HashMap::new();
    for tweet in corpus.visible_tweets() {
        let parsed = parse_tweet(&tweet.text);
        let tokens: Vec<String> = match kind {
            ObjectKind::Hashtag => parsed.hashtags.iter().map(|t| format!("#{t}")).collect(),
            ObjectKind::Url => parsed.urls.clone(),
        };
        for token in tokens {
            let users = mentions.entry(token).or_default();
            let t = users.entry(tweet.author).or_insert(u32::MAX);
            *t = (*t).min(tweet.time);
        }
    }
    let mut episodes: Vec<(String, Episode)> = mentions
        .into_iter()
        .map(|(token, users)| {
            let mut acts: Vec<(NodeId, u32)> = users.into_iter().collect();
            acts.sort_by_key(|&(v, t)| (t, v.0));
            if let Some(omni) = omnipotent {
                for (_, t) in &mut acts {
                    *t += 1;
                }
                acts.insert(0, (omni, 0));
            }
            (token, Episode::new(acts))
        })
        .collect();
    episodes.sort_by(|a, b| a.0.cmp(&b.0));
    ObjectEpisodes { kind, episodes }
}

/// Builds the omnipotent-user augmentation of `graph`: one extra node
/// with an edge to every original node ("all users follow this
/// hypothetical entity"). Returns the augmented graph and the
/// omnipotent node's id; original node ids are unchanged.
pub fn with_omnipotent_user(graph: &DiGraph) -> (DiGraph, NodeId) {
    let n = graph.node_count();
    let omni = NodeId(n as u32);
    let mut b = GraphBuilder::new(n + 1);
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        b.add_edge(u, v).expect("copy of a valid graph");
    }
    for v in graph.nodes() {
        b.add_edge(omni, v).expect("fresh edges from the new node");
    }
    (b.build(), omni)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig};
    use flow_graph::graph::graph_from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus(seed: u64) -> Corpus {
        let cfg = CorpusConfig {
            users: 100,
            hashtags: 8,
            urls: 8,
            drop_rate: 0.0,
            ..Default::default()
        };
        generate(&mut StdRng::seed_from_u64(seed), &cfg)
    }

    #[test]
    fn episodes_match_ground_truth_adoptions() {
        let c = corpus(21);
        let eps = episodes_for_objects(&c, ObjectKind::Url, None);
        assert_eq!(eps.episodes.len(), c.url_objects.len());
        for truth in &c.url_objects {
            let (_, ep) = eps
                .episodes
                .iter()
                .find(|(tok, _)| *tok == truth.token)
                .expect("every object observed");
            for &(v, t) in &truth.adoptions {
                assert_eq!(
                    ep.activation_time(v),
                    Some(t),
                    "user {v} time for {}",
                    truth.token
                );
            }
            assert_eq!(ep.active_count(), truth.adoptions.len());
        }
    }

    #[test]
    fn hashtags_extracted_separately_from_urls() {
        let c = corpus(22);
        let tags = episodes_for_objects(&c, ObjectKind::Hashtag, None);
        assert_eq!(tags.kind, ObjectKind::Hashtag);
        assert_eq!(tags.episodes.len(), c.hashtag_objects.len());
        assert!(tags.episodes.iter().all(|(t, _)| t.starts_with('#')));
        let urls = episodes_for_objects(&c, ObjectKind::Url, None);
        assert!(urls.episodes.iter().all(|(t, _)| t.starts_with("http")));
    }

    #[test]
    fn omnipotent_user_is_always_first() {
        let c = corpus(23);
        let (aug, omni) = with_omnipotent_user(&c.graph);
        let eps = episodes_for_objects(&c, ObjectKind::Hashtag, Some(omni));
        for (_, ep) in &eps.episodes {
            assert_eq!(ep.activation_time(omni), Some(0));
            for &(v, t) in ep.activations() {
                if v != omni {
                    assert!(t >= 1, "real users strictly after the omnipotent user");
                }
            }
        }
        assert_eq!(aug.node_count(), c.graph.node_count() + 1);
    }

    #[test]
    fn omnipotent_graph_structure() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let (aug, omni) = with_omnipotent_user(&g);
        assert_eq!(omni, NodeId(3));
        assert_eq!(aug.edge_count(), 2 + 3);
        for v in 0..3u32 {
            assert!(aug.has_edge(omni, NodeId(v)));
        }
        assert!(aug.has_edge(NodeId(0), NodeId(1)), "original edges kept");
        assert_eq!(aug.out_degree(omni), 3);
        assert_eq!(aug.in_degree(omni), 0);
    }

    #[test]
    fn episode_times_shifted_consistently() {
        let c = corpus(24);
        let plain = episodes_for_objects(&c, ObjectKind::Url, None);
        let (_, omni) = with_omnipotent_user(&c.graph);
        let shifted = episodes_for_objects(&c, ObjectKind::Url, Some(omni));
        for ((_, a), (_, b)) in plain.episodes.iter().zip(&shifted.episodes) {
            assert_eq!(a.active_count() + 1, b.active_count());
            for &(v, t) in a.activations() {
                assert_eq!(b.activation_time(v), Some(t + 1));
            }
        }
    }
}
