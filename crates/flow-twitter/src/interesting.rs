//! "Interesting user" selection (§IV-C, §V-D).
//!
//! The paper focuses its bucket experiments on users "who tweet
//! frequently and whose tweets are retweeted often" (attributed case)
//! and on "originators of many popular hashtags and URLs"
//! (unattributed case). We score each user by
//! `originals × (1 + retweets received)` and take the top `k`.

use crate::corpus::Corpus;
use flow_graph::NodeId;

/// Per-user activity summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UserActivity {
    /// Original tweets authored.
    pub originals: usize,
    /// Retweets *of this user's cascades* by others.
    pub retweets_received: usize,
}

/// Computes activity for every user from the corpus ground truth.
pub fn user_activity(corpus: &Corpus) -> Vec<UserActivity> {
    let mut acts = vec![UserActivity::default(); corpus.graph.node_count()];
    for t in &corpus.tweets {
        if t.is_original() {
            acts[t.author.index()].originals += 1;
        } else {
            let root_author = corpus.tweet(t.true_root).author;
            acts[root_author.index()].retweets_received += 1;
        }
    }
    acts
}

/// Returns the top `k` users by `originals × (1 + retweets_received)`,
/// most interesting first. Ties break toward lower node ids for
/// determinism.
pub fn interesting_users(corpus: &Corpus, k: usize) -> Vec<NodeId> {
    let acts = user_activity(corpus);
    let mut scored: Vec<(usize, NodeId)> = acts
        .iter()
        .enumerate()
        .map(|(i, a)| (a.originals * (1 + a.retweets_received), NodeId(i as u32)))
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored
        .into_iter()
        .take(k)
        .filter(|&(s, _)| s > 0)
        .map(|(_, v)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn activity_counts_are_consistent() {
        let cfg = CorpusConfig {
            users: 100,
            hashtags: 0,
            urls: 0,
            ..Default::default()
        };
        let c = generate(&mut StdRng::seed_from_u64(31), &cfg);
        let acts = user_activity(&c);
        let total_originals: usize = acts.iter().map(|a| a.originals).sum();
        let total_retweets: usize = acts.iter().map(|a| a.retweets_received).sum();
        assert_eq!(
            total_originals,
            c.tweets.iter().filter(|t| t.is_original()).count()
        );
        assert_eq!(
            total_retweets,
            c.tweets.iter().filter(|t| !t.is_original()).count()
        );
    }

    #[test]
    fn interesting_users_are_sorted_and_active() {
        let cfg = CorpusConfig {
            users: 150,
            hashtags: 0,
            urls: 0,
            ..Default::default()
        };
        let c = generate(&mut StdRng::seed_from_u64(32), &cfg);
        let acts = user_activity(&c);
        let top = interesting_users(&c, 10);
        assert!(top.len() <= 10);
        assert!(!top.is_empty());
        let score = |v: NodeId| acts[v.index()].originals * (1 + acts[v.index()].retweets_received);
        for w in top.windows(2) {
            assert!(score(w[0]) >= score(w[1]), "sorted descending");
        }
        assert!(score(top[0]) > 0);
    }

    #[test]
    fn requesting_more_than_available_truncates() {
        let cfg = CorpusConfig {
            users: 10,
            tweets_per_user: 0.2,
            hashtags: 0,
            urls: 0,
            ..Default::default()
        };
        let c = generate(&mut StdRng::seed_from_u64(33), &cfg);
        let top = interesting_users(&c, 500);
        assert!(top.len() <= 10);
        // All returned users actually tweeted.
        let acts = user_activity(&c);
        for v in top {
            assert!(acts[v.index()].originals > 0);
        }
    }
}
