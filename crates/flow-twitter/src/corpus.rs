//! Synthetic corpus generation.
//!
//! The generator builds, in order: a follow graph (directed preferential
//! attachment — edges point in the direction tweets flow), three hidden
//! ground-truth ICMs over that graph (retweet, hashtag, URL), original
//! tweets per user, retweet cascades with `RT @user:` ancestry syntax,
//! hashtag/URL adoption cascades (hashtags get extra *exogenous*
//! adopters to reproduce the paper's Fig. 8 vs Fig. 9 contrast), and
//! finally a random crawl *drop* that hides a fraction of tweets from
//! the preprocessing stage.

use flow_graph::{DiGraph, NodeId};
use flow_icm::state::simulate_cascade;
use flow_icm::Icm;
use flow_stats::Beta;
use rand::Rng;

/// Maximum tweet length, enforced like the real service.
pub const TWEET_LIMIT: usize = 140;

/// Identifier of a tweet within a corpus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TweetId(pub u64);

/// One tweet (original or retweet).
#[derive(Clone, Debug)]
pub struct Tweet {
    /// Corpus-unique id.
    pub id: TweetId,
    /// Author's node id in the follow graph.
    pub author: NodeId,
    /// Logical timestamp (cascade depth; originals are at their own
    /// emission time).
    pub time: u32,
    /// The ≤140-character text, in real Twitter syntax.
    pub text: String,
    /// Ground truth: the tweet this one retweeted, if any.
    pub true_parent: Option<TweetId>,
    /// Ground truth: the original tweet at the root of the cascade.
    pub true_root: TweetId,
    /// Whether the crawl captured this tweet (false = dropped).
    pub visible: bool,
}

impl Tweet {
    /// True iff this is an original (non-retweet) tweet.
    pub fn is_original(&self) -> bool {
        self.true_parent.is_none()
    }
}

/// Corpus generation parameters.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of users (nodes).
    pub users: usize,
    /// Preferential-attachment out-links per new node.
    pub attachment: usize,
    /// Probability a follow is reciprocated.
    pub reciprocity: f64,
    /// Mean original tweets per user (geometric-ish).
    pub tweets_per_user: f64,
    /// Fraction of tweets hidden from the crawl.
    pub drop_rate: f64,
    /// Number of distinct hashtag objects.
    pub hashtags: usize,
    /// Number of distinct URL objects.
    pub urls: usize,
    /// Per-user probability of adopting a hashtag *exogenously*
    /// (offline coordination, independent discovery) — the mechanism
    /// the paper blames for the poor hashtag calibration of Fig. 9.
    pub exogenous_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            users: 300,
            attachment: 3,
            reciprocity: 0.3,
            tweets_per_user: 3.0,
            drop_rate: 0.1,
            hashtags: 40,
            urls: 40,
            exogenous_rate: 0.02,
        }
    }
}

/// One hashtag or URL object's ground truth: its token and the true
/// adoption times (including exogenous ones).
#[derive(Clone, Debug)]
pub struct PropagatedObject {
    /// The in-text token (`#tag17` / `http://bit.ly/ab12cd`).
    pub token: String,
    /// `(user, time)` adoptions.
    pub adoptions: Vec<(NodeId, u32)>,
    /// Users who adopted exogenously (not via a graph edge).
    pub exogenous: Vec<NodeId>,
}

/// A complete synthetic corpus with its hidden ground truth.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// The follow graph (edges point in the flow direction).
    pub graph: DiGraph,
    /// All tweets, visible or not, ordered by id.
    pub tweets: Vec<Tweet>,
    /// Hidden retweet-probability ICM (ground truth).
    pub retweet_truth: Icm,
    /// Hidden hashtag-propagation ICM.
    pub hashtag_truth: Icm,
    /// Hidden URL-propagation ICM.
    pub url_truth: Icm,
    /// Ground-truth hashtag objects.
    pub hashtag_objects: Vec<PropagatedObject>,
    /// Ground-truth URL objects.
    pub url_objects: Vec<PropagatedObject>,
}

impl Corpus {
    /// The `@handle` of a user (deterministic from the node id).
    pub fn handle(user: NodeId) -> String {
        format!("u{}", user.0)
    }

    /// Parses a handle back to a node id.
    pub fn user_of_handle(handle: &str) -> Option<NodeId> {
        handle.strip_prefix('u')?.parse::<u32>().ok().map(NodeId)
    }

    /// The tweets the crawl captured.
    pub fn visible_tweets(&self) -> impl Iterator<Item = &Tweet> {
        self.tweets.iter().filter(|t| t.visible)
    }

    /// Looks a tweet up by id.
    pub fn tweet(&self, id: TweetId) -> &Tweet {
        &self.tweets[id.0 as usize]
    }
}

/// Draws a tag/URL-propagation edge probability: a skewed mixture in
/// the spirit of §V-C (most edges weak, a minority strong) but with a
/// lower overall mean — 75% `Beta(2.5, 7.5)` (mean 0.25) and 25%
/// `Beta(6, 4)` (mean 0.6). On a preferential-attachment graph this
/// keeps cascades from saturating the network, so flow outcomes vary
/// and calibration is measurable; the paper's original 0.74-mean
/// mixture (used for its single-sink learning experiments) would make
/// every cascade reach essentially every user.
fn skewed_edge_prob<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    if rng.random::<f64>() < 0.75 {
        Beta::new(2.5, 7.5).sample(rng)
    } else {
        Beta::new(6.0, 4.0).sample(rng)
    }
}

/// Generates a corpus.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, cfg: &CorpusConfig) -> Corpus {
    assert!(cfg.users >= 2, "need at least two users");
    let graph = flow_graph::generate::preferential_attachment(
        rng,
        cfg.users,
        cfg.attachment,
        cfg.reciprocity,
    );
    // Retweet probabilities are moderate (people forward selectively);
    // hashtag/URL adoption uses the skewed mixture.
    let retweet_truth = Icm::new(
        graph.clone(),
        (0..graph.edge_count())
            .map(|_| Beta::new(3.0, 7.0).sample(rng))
            .collect(),
    );
    let hashtag_truth = Icm::new(
        graph.clone(),
        (0..graph.edge_count())
            .map(|_| skewed_edge_prob(rng))
            .collect(),
    );
    let url_truth = Icm::new(
        graph.clone(),
        (0..graph.edge_count())
            .map(|_| skewed_edge_prob(rng))
            .collect(),
    );

    let mut tweets: Vec<Tweet> = Vec::new();
    // --- Original tweets and retweet cascades ---------------------------
    for user in graph.nodes() {
        // Geometric number of originals with the configured mean.
        let continue_p = cfg.tweets_per_user / (1.0 + cfg.tweets_per_user);
        let mut count = 0usize;
        while rng.random::<f64>() < continue_p && count < 50 {
            count += 1;
            spawn_cascade(rng, &graph, &retweet_truth, user, &mut tweets);
        }
    }
    // --- Hashtag and URL objects ----------------------------------------
    let mut hashtag_objects = Vec::with_capacity(cfg.hashtags);
    for i in 0..cfg.hashtags {
        let token = format!("#tag{i}");
        hashtag_objects.push(propagate_object(
            rng,
            &graph,
            &hashtag_truth,
            token,
            cfg.exogenous_rate,
            &mut tweets,
        ));
    }
    let mut url_objects = Vec::with_capacity(cfg.urls);
    for i in 0..cfg.urls {
        // bit.ly-style shortened URLs: high entropy, never co-invented.
        let token = format!("http://bit.ly/{i:06x}");
        url_objects.push(propagate_object(
            rng,
            &graph,
            &url_truth,
            token,
            0.0,
            &mut tweets,
        ));
    }
    // --- Crawl sparsity ---------------------------------------------------
    for t in &mut tweets {
        if rng.random::<f64>() < cfg.drop_rate {
            t.visible = false;
        }
    }
    Corpus {
        graph,
        tweets,
        retweet_truth,
        hashtag_truth,
        url_truth,
        hashtag_objects,
        url_objects,
    }
}

/// Simulates one retweet cascade rooted at `author`, appending the
/// original tweet and every retweet (with proper `RT @…:` ancestry
/// text) to `tweets`.
fn spawn_cascade<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    retweet_truth: &Icm,
    author: NodeId,
    tweets: &mut Vec<Tweet>,
) {
    let root_id = TweetId(tweets.len() as u64);
    let body = format!("m{} lorem ipsum", root_id.0);
    tweets.push(Tweet {
        id: root_id,
        author,
        time: 0,
        text: body.clone(),
        true_parent: None,
        true_root: root_id,
        visible: true,
    });
    // Cascade over the retweet ICM. Every *fired edge* produces one
    // retweet citing that edge's parent: a user exposed through several
    // firing edges retweets each of them. This keeps the observable
    // evidence aligned with the ICM's per-edge Bernoulli semantics —
    // the betaICM counting rule (§II-A) increments β for every
    // opportunity-without-retweet, so an edge that fired but went
    // uncited would be mis-counted as a failure (see DESIGN.md).
    let state = simulate_cascade(retweet_truth, &[author], rng);
    let reach =
        flow_graph::traverse::reachable_filtered(graph, &[author], |e| state.is_edge_active(e));
    // Each activated user's *first* (re)tweet in this cascade; their
    // own descendants cite this one.
    let mut tweet_of: Vec<Option<TweetId>> = vec![None; graph.node_count()];
    tweet_of[author.index()] = Some(root_id);
    for &u in reach.order.iter() {
        let parent_tweet_id = tweet_of[u.index()].expect("parents tweet before children");
        for &e in graph.out_edges(u) {
            if !state.is_edge_active(e) {
                continue;
            }
            let v = graph.dst(e);
            let parent_tweet = &tweets[parent_tweet_id.0 as usize];
            let mut text = format!("RT @{}: {}", Corpus::handle(u), parent_tweet.text);
            if text.len() > TWEET_LIMIT {
                text.truncate(TWEET_LIMIT);
            }
            let id = TweetId(tweets.len() as u64);
            let time = parent_tweet.time + 1;
            tweets.push(Tweet {
                id,
                author: v,
                time,
                text,
                true_parent: Some(parent_tweet_id),
                true_root: root_id,
                visible: true,
            });
            if tweet_of[v.index()].is_none() {
                tweet_of[v.index()] = Some(id);
            }
        }
    }
}

/// Simulates one hashtag/URL object: a random origin cascade plus
/// (for hashtags) independent exogenous adopters, each adoption
/// emitting a tweet mentioning the token.
fn propagate_object<R: Rng + ?Sized>(
    rng: &mut R,
    graph: &DiGraph,
    truth: &Icm,
    token: String,
    exogenous_rate: f64,
    tweets: &mut Vec<Tweet>,
) -> PropagatedObject {
    let n = graph.node_count();
    let origin = NodeId(rng.random_range(0..n as u32));
    let mut exogenous = vec![origin];
    for v in graph.nodes() {
        if v != origin && rng.random::<f64>() < exogenous_rate {
            exogenous.push(v);
        }
    }
    // Multi-source cascade: every exogenous adopter seeds the spread.
    let state = simulate_cascade(truth, &exogenous, rng);
    let reach =
        flow_graph::traverse::reachable_filtered(graph, &exogenous, |e| state.is_edge_active(e));
    // Times: exogenous adopters at 0, others at BFS depth.
    let mut depth = vec![u32::MAX; n];
    let mut adoptions = Vec::new();
    for &s in &exogenous {
        depth[s.index()] = 0;
    }
    for &v in &reach.order {
        let t = if depth[v.index()] == 0 {
            0
        } else {
            let d = graph
                .in_edges(v)
                .iter()
                .filter(|&&e| state.is_edge_active(e))
                .map(|&e| depth[graph.src(e).index()])
                .filter(|&d| d != u32::MAX)
                .min()
                .map(|d| d + 1)
                .unwrap_or(0);
            depth[v.index()] = d;
            d
        };
        adoptions.push((v, t));
        let id = TweetId(tweets.len() as u64);
        tweets.push(Tweet {
            id,
            author: v,
            time: t,
            text: format!("about {token} m{}", id.0),
            true_parent: None,
            true_root: id,
            visible: true,
        });
    }
    PropagatedObject {
        token,
        adoptions,
        exogenous,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_corpus(seed: u64) -> Corpus {
        let cfg = CorpusConfig {
            users: 80,
            hashtags: 5,
            urls: 5,
            ..Default::default()
        };
        generate(&mut StdRng::seed_from_u64(seed), &cfg)
    }

    #[test]
    fn corpus_shape() {
        let c = small_corpus(1);
        assert_eq!(c.graph.node_count(), 80);
        assert!(c.tweets.len() > 100, "tweets {}", c.tweets.len());
        assert_eq!(c.hashtag_objects.len(), 5);
        assert_eq!(c.url_objects.len(), 5);
        assert_eq!(c.retweet_truth.edge_count(), c.graph.edge_count());
    }

    #[test]
    fn handles_roundtrip() {
        assert_eq!(Corpus::handle(NodeId(17)), "u17");
        assert_eq!(Corpus::user_of_handle("u17"), Some(NodeId(17)));
        assert_eq!(Corpus::user_of_handle("bogus"), None);
    }

    #[test]
    fn tweet_invariants() {
        let c = small_corpus(2);
        for t in &c.tweets {
            assert!(t.text.len() <= TWEET_LIMIT);
            let root = c.tweet(t.true_root);
            assert!(root.is_original());
            if let Some(pid) = t.true_parent {
                let parent = c.tweet(pid);
                assert_eq!(parent.true_root, t.true_root);
                assert_eq!(t.time, parent.time + 1);
                assert!(
                    t.text
                        .starts_with(&format!("RT @{}:", Corpus::handle(parent.author))),
                    "retweet syntax: {}",
                    t.text
                );
                // The retweet edge exists in the follow graph.
                assert!(c.graph.has_edge(parent.author, t.author));
            }
        }
    }

    #[test]
    fn drop_rate_hides_tweets() {
        let c = small_corpus(3);
        let visible = c.visible_tweets().count();
        let total = c.tweets.len();
        let frac = visible as f64 / total as f64;
        assert!(frac > 0.8 && frac < 0.97, "visible fraction {frac}");
    }

    #[test]
    fn urls_have_no_exogenous_adopters() {
        let c = small_corpus(4);
        for o in &c.url_objects {
            assert_eq!(o.exogenous.len(), 1, "URLs spread only via the graph");
        }
        // Hashtags (rate 0.02 over 80 users, 5 tags) usually have some.
        let extra: usize = c
            .hashtag_objects
            .iter()
            .map(|o| o.exogenous.len() - 1)
            .sum();
        assert!(extra > 0, "expected some exogenous hashtag adoptions");
    }

    #[test]
    fn object_adoptions_are_unique_users_with_causal_times() {
        let c = small_corpus(5);
        for o in c.hashtag_objects.iter().chain(&c.url_objects) {
            let mut seen = std::collections::HashSet::new();
            for &(v, _) in &o.adoptions {
                assert!(seen.insert(v), "user adopts once");
            }
            for &s in &o.exogenous {
                let t = o.adoptions.iter().find(|&&(v, _)| v == s).unwrap().1;
                assert_eq!(t, 0, "exogenous adopters at time 0");
            }
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = small_corpus(9);
        let b = small_corpus(9);
        assert_eq!(a.tweets.len(), b.tweets.len());
        for (x, y) in a.tweets.iter().zip(&b.tweets) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.visible, y.visible);
        }
    }
}
