//! Raw-tweet ingestion: run the paper's pipeline on external data.
//!
//! The rest of this crate generates synthetic corpora with known ground
//! truth; this module is the entry point for *real* crawls. A crawl is
//! a list of [`RawTweet`]s (author handle, timestamp, text); from it we
//! build the user index, reconstruct attributed retweet evidence over
//! the topology inferred from `@` references, and extract unattributed
//! hashtag/URL adoption episodes — exactly the preprocessing of §IV-B
//! and §V-D.
//!
//! A tab-separated on-disk format (`author \t time \t text`) is
//! provided for interchange; any loader producing `RawTweet`s works.

use crate::parse::parse_tweet;
use flow_core::{fault, FlowError, FlowResult};
use flow_graph::{DiGraph, GraphBuilder, NodeId};
use flow_icm::{AttributedEvidence, AttributedRecord};
use flow_learn::Episode;
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// One tweet of an external crawl.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawTweet {
    /// Author's handle (without the `@`).
    pub author: String,
    /// Timestamp (any monotone integer clock).
    pub time: u32,
    /// Tweet text (retweet syntax, hashtags, URLs are parsed from it).
    pub text: String,
}

/// Errors from the TSV reader.
#[derive(Debug)]
pub enum TsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (fewer than 3 fields or a bad timestamp).
    Malformed {
        /// 1-based line number of the malformed record.
        line: usize,
    },
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsvError::Io(e) => write!(f, "i/o error: {e}"),
            TsvError::Malformed { line } => write!(f, "malformed TSV line {line}"),
        }
    }
}

impl std::error::Error for TsvError {}

impl From<std::io::Error> for TsvError {
    fn from(e: std::io::Error) -> Self {
        TsvError::Io(e)
    }
}

impl From<TsvError> for FlowError {
    fn from(e: TsvError) -> Self {
        match e {
            TsvError::Io(io) => FlowError::from(io),
            TsvError::Malformed { line } => FlowError::Parse {
                line,
                detail: "malformed TSV line".into(),
            },
        }
    }
}

/// Parses one non-empty TSV line (1-based `lineno` for error reports).
fn parse_tsv_line(line: &str, lineno: usize) -> FlowResult<RawTweet> {
    let mut parts = line.splitn(3, '\t');
    let missing = |what: &str| FlowError::Parse {
        line: lineno,
        detail: format!("missing {what} field"),
    };
    let author = parts.next().ok_or_else(|| missing("author"))?;
    let time_field = parts.next().ok_or_else(|| missing("timestamp"))?;
    let time = time_field.parse::<u32>().map_err(|_| FlowError::Parse {
        line: lineno,
        detail: format!("bad timestamp {time_field:?}"),
    })?;
    let text = parts.next().ok_or_else(|| missing("text"))?;
    Ok(RawTweet {
        author: author.to_string(),
        time,
        text: text.to_string(),
    })
}

/// Reads `author \t time \t text` lines. Text may contain further tabs;
/// only the first two are separators. Empty lines are skipped.
///
/// This is the *strict* reader: the first malformed line aborts the
/// load. Real crawls are messy — see [`read_tsv_lossy`] for the
/// harvest-what-you-can variant.
pub fn read_tsv(reader: impl BufRead) -> Result<Vec<RawTweet>, TsvError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_tsv_line(&line, i + 1) {
            Ok(t) => out.push(t),
            Err(_) => return Err(TsvError::Malformed { line: i + 1 }),
        }
    }
    Ok(out)
}

/// The outcome of a lossy TSV load: every parseable tweet, plus one
/// typed [`FlowError::Parse`] record per malformed line.
#[derive(Debug, Default)]
pub struct TsvReport {
    /// Tweets from the well-formed lines, in file order.
    pub tweets: Vec<RawTweet>,
    /// One [`FlowError::Parse`] per malformed line, in file order.
    pub errors: Vec<FlowError>,
    /// Count of well-formed (non-empty) lines.
    pub good_lines: usize,
    /// Count of malformed lines.
    pub bad_lines: usize,
}

impl TsvReport {
    /// One-line summary for logs: `"42 lines ok, 3 malformed"`.
    pub fn summary(&self) -> String {
        format!("{} lines ok, {} malformed", self.good_lines, self.bad_lines)
    }

    /// True if every non-empty line parsed.
    pub fn is_clean(&self) -> bool {
        self.bad_lines == 0
    }
}

/// Reads the TSV format like [`read_tsv`], but per-line failures become
/// [`FlowError::Parse`] records in the returned [`TsvReport`] instead
/// of aborting the whole load. Only I/O errors abort.
///
/// In fault-injection builds the `twitter.truncate_line` fault point
/// chops lines in half before parsing, simulating a crawl cut mid-write.
pub fn read_tsv_lossy(reader: impl BufRead) -> FlowResult<TsvReport> {
    let mut report = TsvReport::default();
    for (i, line) in reader.lines().enumerate() {
        let mut line = line?;
        if fault::fires("twitter.truncate_line") {
            line.truncate(line.len() / 2);
        }
        if line.trim().is_empty() {
            continue;
        }
        match parse_tsv_line(&line, i + 1) {
            Ok(t) => {
                report.tweets.push(t);
                report.good_lines += 1;
            }
            Err(e) => {
                report.errors.push(e);
                report.bad_lines += 1;
            }
        }
    }
    Ok(report)
}

/// Writes tweets in the TSV interchange format.
pub fn write_tsv(tweets: &[RawTweet], mut writer: impl Write) -> std::io::Result<()> {
    for t in tweets {
        writeln!(writer, "{}\t{}\t{}", t.author, t.time, t.text)?;
    }
    Ok(())
}

/// A user index mapping handles to dense node ids.
#[derive(Clone, Debug, Default)]
pub struct UserIndex {
    handles: Vec<String>,
    by_handle: HashMap<String, NodeId>,
}

impl UserIndex {
    /// Builds the index from every author and every handle mentioned in
    /// retweet chains, in first-appearance order.
    pub fn build(tweets: &[RawTweet]) -> Self {
        let mut idx = UserIndex::default();
        for t in tweets {
            idx.intern(&t.author);
            for h in parse_tweet(&t.text).chain {
                idx.intern(&h);
            }
        }
        idx
    }

    fn intern(&mut self, handle: &str) -> NodeId {
        if let Some(&id) = self.by_handle.get(handle) {
            return id;
        }
        let id = NodeId(self.handles.len() as u32);
        self.handles.push(handle.to_string());
        self.by_handle.insert(handle.to_string(), id);
        id
    }

    /// Number of distinct users.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True if no users were seen.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Node id of `handle`, if seen.
    pub fn id(&self, handle: &str) -> Option<NodeId> {
        self.by_handle.get(handle).copied()
    }

    /// Handle of a node id.
    pub fn handle(&self, id: NodeId) -> &str {
        &self.handles[id.index()]
    }
}

/// Attributed evidence reconstructed from a raw crawl.
#[derive(Clone, Debug)]
pub struct RawReconstruction {
    /// Users (handles ↔ dense ids).
    pub users: UserIndex,
    /// Topology inferred from the `@` reference pairs.
    pub graph: DiGraph,
    /// One record per reconstructed root message.
    pub evidence: AttributedEvidence,
    /// Root messages reconstructed.
    pub objects: usize,
}

/// Reconstructs attributed retweet evidence from raw tweets: groups by
/// root body, reads ancestry chains, infers the topology from the
/// chain-adjacent `(parent, child)` pairs, and emits one attributed
/// record per object (§IV-B on external data).
pub fn reconstruct_from_raw(tweets: &[RawTweet]) -> RawReconstruction {
    let users = UserIndex::build(tweets);
    // Group per root body: pairs, active users, root author.
    struct Obj {
        root: Option<NodeId>,
        pairs: Vec<(NodeId, NodeId)>,
        active: Vec<NodeId>,
    }
    let mut objects: HashMap<String, Obj> = HashMap::new();
    for t in tweets {
        let parsed = parse_tweet(&t.text);
        let author = users.id(&t.author).expect("interned");
        let obj = objects.entry(parsed.body.clone()).or_insert(Obj {
            root: None,
            pairs: Vec::new(),
            active: Vec::new(),
        });
        obj.active.push(author);
        if parsed.chain.is_empty() {
            obj.root = Some(author);
            continue;
        }
        let chain: Vec<NodeId> = parsed
            .chain
            .iter()
            .map(|h| users.id(h).expect("interned"))
            .collect();
        let mut child = author;
        for &parent in &chain {
            if parent != child {
                obj.pairs.push((parent, child));
            }
            obj.active.push(parent);
            child = parent;
        }
        obj.root.get_or_insert(*chain.last().expect("nonempty"));
    }
    // Inferred topology.
    let mut builder = GraphBuilder::new(users.len());
    for obj in objects.values() {
        for &(p, c) in &obj.pairs {
            if p != c && !builder.has_edge(p, c) {
                builder.add_edge(p, c).expect("checked");
            }
        }
    }
    let graph = builder.build();
    let mut evidence = AttributedEvidence::new();
    let mut count = 0usize;
    for obj in objects.values() {
        let Some(root) = obj.root else { continue };
        let edges: Vec<_> = obj
            .pairs
            .iter()
            .filter_map(|&(p, c)| graph.find_edge(p, c))
            .collect();
        let record = AttributedRecord::from_lists(&graph, vec![root], &obj.active, &edges);
        if record.validate(&graph).is_ok() {
            evidence.push(record);
            count += 1;
        }
    }
    RawReconstruction {
        users,
        graph,
        evidence,
        objects: count,
    }
}

/// Extracts unattributed adoption episodes for hashtags or URLs from a
/// raw crawl (§V-D on external data): one episode per token, a user's
/// activation time being their first mention.
pub fn episodes_from_raw(
    tweets: &[RawTweet],
    users: &UserIndex,
    kind: crate::tags::ObjectKind,
) -> Vec<(String, Episode)> {
    let mut mentions: HashMap<String, HashMap<NodeId, u32>> = HashMap::new();
    for t in tweets {
        let parsed = parse_tweet(&t.text);
        let Some(author) = users.id(&t.author) else {
            continue;
        };
        let tokens: Vec<String> = match kind {
            crate::tags::ObjectKind::Hashtag => {
                parsed.hashtags.iter().map(|h| format!("#{h}")).collect()
            }
            crate::tags::ObjectKind::Url => parsed.urls.clone(),
        };
        for token in tokens {
            let slot = mentions
                .entry(token)
                .or_default()
                .entry(author)
                .or_insert(u32::MAX);
            *slot = (*slot).min(t.time);
        }
    }
    let mut out: Vec<(String, Episode)> = mentions
        .into_iter()
        .map(|(token, m)| {
            let mut acts: Vec<(NodeId, u32)> = m.into_iter().collect();
            acts.sort_by_key(|&(v, t)| (t, v.0));
            (token, Episode::new(acts))
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::ObjectKind;

    fn raw(author: &str, time: u32, text: &str) -> RawTweet {
        RawTweet {
            author: author.into(),
            time,
            text: text.into(),
        }
    }

    fn sample_crawl() -> Vec<RawTweet> {
        vec![
            raw("alice", 0, "big news #launch http://bit.ly/abc"),
            raw("bob", 1, "RT @alice: big news #launch http://bit.ly/abc"),
            raw(
                "carol",
                2,
                "RT @bob: RT @alice: big news #launch http://bit.ly/abc",
            ),
            raw("dave", 1, "RT @alice: big news #launch http://bit.ly/abc"),
            raw("bob", 3, "unrelated musings"),
        ]
    }

    #[test]
    fn tsv_roundtrip() {
        let tweets = sample_crawl();
        let mut buf = Vec::new();
        write_tsv(&tweets, &mut buf).unwrap();
        let back = read_tsv(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, tweets);
    }

    #[test]
    fn tsv_rejects_malformed() {
        let bad = "alice\tnot_a_number\thello\n";
        assert!(matches!(
            read_tsv(std::io::Cursor::new(bad)),
            Err(TsvError::Malformed { line: 1 })
        ));
        let short = "alice\t3\n";
        assert!(matches!(
            read_tsv(std::io::Cursor::new(short)),
            Err(TsvError::Malformed { line: 1 })
        ));
        // Tabs inside the text are preserved.
        let tabby = "alice\t3\thello\tworld\n";
        let ok = read_tsv(std::io::Cursor::new(tabby)).unwrap();
        assert_eq!(ok[0].text, "hello\tworld");
    }

    #[test]
    fn lossy_reader_harvests_good_lines_from_corrupt_fixture() {
        // A crawl with interleaved garbage: field-starved lines, a bad
        // timestamp, binary junk, and a line cut mid-field.
        let fixture = "alice\t0\tbig news #launch\n\
                       totally-not-tsv\n\
                       bob\t1\tRT @alice: big news #launch\n\
                       carol\tyesterday\tRT @alice: big news #launch\n\
                       \n\
                       dave\t2\n\
                       eve\t3\tlate to the party\n\
                       \u{1}\u{2}\u{3}\t\u{4}\n";
        let report = read_tsv_lossy(std::io::Cursor::new(fixture)).unwrap();
        assert_eq!(report.good_lines, 3);
        assert_eq!(report.bad_lines, 4);
        assert!(!report.is_clean());
        assert_eq!(report.summary(), "3 lines ok, 4 malformed");
        assert_eq!(report.tweets.len(), 3);
        assert_eq!(report.tweets[0].author, "alice");
        assert_eq!(report.tweets[2].author, "eve");
        // Every error is a typed Parse record naming its 1-based line.
        let lines: Vec<usize> = report
            .errors
            .iter()
            .map(|e| match e {
                flow_core::FlowError::Parse { line, .. } => *line,
                other => panic!("expected Parse, got {other:?}"),
            })
            .collect();
        assert_eq!(lines, vec![2, 4, 6, 8]);
        // The same fixture aborts the strict reader at the first bad line.
        assert!(matches!(
            read_tsv(std::io::Cursor::new(fixture)),
            Err(TsvError::Malformed { line: 2 })
        ));
        // The harvested tweets feed the normal pipeline.
        let rec = reconstruct_from_raw(&report.tweets);
        assert!(rec.users.id("alice").is_some());
        assert!(rec.users.id("carol").is_none(), "bad line dropped");
    }

    #[test]
    fn tsv_error_converts_to_flow_error() {
        let e: flow_core::FlowError = TsvError::Malformed { line: 7 }.into();
        assert!(matches!(e, flow_core::FlowError::Parse { line: 7, .. }));
        let io = TsvError::Io(std::io::Error::other("boom"));
        assert!(matches!(
            flow_core::FlowError::from(io),
            flow_core::FlowError::Io { .. }
        ));
    }

    #[test]
    fn reconstruction_builds_chain_topology() {
        let rec = reconstruct_from_raw(&sample_crawl());
        assert_eq!(rec.users.len(), 4);
        let alice = rec.users.id("alice").unwrap();
        let bob = rec.users.id("bob").unwrap();
        let carol = rec.users.id("carol").unwrap();
        let dave = rec.users.id("dave").unwrap();
        assert!(rec.graph.has_edge(alice, bob));
        assert!(rec.graph.has_edge(bob, carol));
        assert!(rec.graph.has_edge(alice, dave));
        assert!(!rec.graph.has_edge(alice, carol), "carol came via bob");
        // Two objects: the news cascade and bob's unrelated original.
        assert_eq!(rec.objects, 2);
        assert_eq!(rec.evidence.validate(&rec.graph), Ok(()));
        assert_eq!(rec.users.handle(alice), "alice");
    }

    #[test]
    fn reconstruction_recovers_missing_original() {
        // Alice's original was not crawled; only retweets exist.
        let tweets = vec![
            raw("bob", 1, "RT @alice: the lost original"),
            raw("carol", 2, "RT @bob: RT @alice: the lost original"),
        ];
        let rec = reconstruct_from_raw(&tweets);
        let alice = rec.users.id("alice").expect("recovered from chains");
        for r in rec.evidence.iter() {
            assert_eq!(r.sources, vec![alice]);
        }
        assert_eq!(rec.objects, 1);
    }

    #[test]
    fn episodes_extracted_per_token() {
        let tweets = sample_crawl();
        let rec = reconstruct_from_raw(&tweets);
        let tags = episodes_from_raw(&tweets, &rec.users, ObjectKind::Hashtag);
        assert_eq!(tags.len(), 1);
        let (token, ep) = &tags[0];
        assert_eq!(token, "#launch");
        assert_eq!(ep.active_count(), 4);
        assert_eq!(ep.activation_time(rec.users.id("alice").unwrap()), Some(0));
        assert_eq!(ep.activation_time(rec.users.id("carol").unwrap()), Some(2));
        let urls = episodes_from_raw(&tweets, &rec.users, ObjectKind::Url);
        assert_eq!(urls.len(), 1);
        assert_eq!(urls[0].0, "http://bit.ly/abc");
    }

    #[test]
    fn end_to_end_training_on_raw_data() {
        // The raw pipeline feeds straight into betaICM training.
        let rec = reconstruct_from_raw(&sample_crawl());
        let model = flow_icm::BetaIcm::train(rec.graph.clone(), &rec.evidence);
        let alice = rec.users.id("alice").unwrap();
        let bob = rec.users.id("bob").unwrap();
        let e = rec.graph.find_edge(alice, bob).unwrap();
        // alice->bob fired once (the cascade), and had one opportunity
        // without a retweet (bob's own original doesn't count — alice
        // wasn't active for that object). α=2, β=1.
        assert_eq!(model.edge_beta(e).alpha(), 2.0);
        assert_eq!(model.edge_beta(e).beta(), 1.0);
    }
}
