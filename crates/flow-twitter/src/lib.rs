//! A synthetic Twitter substrate standing in for the paper's Choudhury
//! et al. crawl (§IV-B, §V-D).
//!
//! The original evaluation used a 10M-tweet / 118K-user crawl that is
//! not redistributable; this crate builds a corpus with the same
//! *structure* so the paper's entire pipeline runs end-to-end:
//!
//! * [`corpus`] — a preferential-attachment follow graph carries hidden
//!   ground-truth ICMs (retweet, hashtag, and URL propagation). Users
//!   emit original tweets; cascades simulated from the retweet ICM
//!   produce retweets with real Twitter syntax (`RT @user:` ancestry
//!   chains, 140-character truncation, `#hashtags`, shortened URLs). A
//!   configurable fraction of tweets is *dropped* to reproduce the
//!   crawl's sparsity ("containing many retweeted messages without the
//!   original tweet").
//! * [`parse`] — tweet-text parsing: retweet chains, mentions,
//!   hashtags, URLs.
//! * [`retweets`] — preprocessing for **attributed** evidence: identify
//!   retweets by syntax, link chains back through the data, recover
//!   missing originals, infer topology from `@` references, and emit
//!   `flow_icm::AttributedEvidence`.
//! * [`tags`] — preprocessing for **unattributed** evidence: hashtag
//!   and URL adoption episodes (first-mention times), plus the
//!   *omnipotent user* construction that models information entering
//!   Twitter from the outside world.
//! * [`interesting`] — the paper's "interesting user" selection (users
//!   who tweet frequently and whose tweets are retweeted often).
//! * [`io`] — the entry point for *real* crawls: a TSV interchange
//!   format and reconstruction/episode extraction straight from raw
//!   `(author, time, text)` tweets.
//!
//! Because the generator's ground truth is known, this substrate also
//! lets tests verify what the paper could not: that chain
//! reconstruction recovers the true attribution when nothing is
//! dropped.

pub mod corpus;
pub mod interesting;
pub mod io;
pub mod parse;
pub mod retweets;
pub mod tags;

pub use corpus::{Corpus, CorpusConfig, Tweet, TweetId};
pub use io::{
    episodes_from_raw, read_tsv, read_tsv_lossy, reconstruct_from_raw, write_tsv, RawTweet,
    TsvReport, UserIndex,
};
pub use parse::ParsedTweet;
pub use retweets::{reconstruct_attributed, ReconstructedEvidence};
pub use tags::{episodes_for_objects, with_omnipotent_user, ObjectEpisodes, ObjectKind};
