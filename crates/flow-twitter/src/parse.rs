//! Tweet-text parsing: retweet chains, mentions, hashtags, and URLs.
//!
//! The paper identifies "retweets and their attributed parent and
//! possibly more distant ancestors by the message syntax". The syntax
//! handled here is the classic manual-retweet convention:
//!
//! ```text
//! RT @alice: RT @bob: original message #tag http://bit.ly/abc123
//! ```
//!
//! which encodes the ancestry chain `[alice, bob]` (nearest ancestor
//! first) and the root body `original message #tag …`.

/// The structured content of one tweet's text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedTweet {
    /// Retweet ancestry, nearest ancestor first (empty = original).
    pub chain: Vec<String>,
    /// The root message body (everything after the last `RT @x:`).
    pub body: String,
    /// `#hashtags` appearing in the body (without the `#`).
    pub hashtags: Vec<String>,
    /// URLs appearing in the body.
    pub urls: Vec<String>,
}

impl ParsedTweet {
    /// True iff the text carried retweet syntax.
    pub fn is_retweet(&self) -> bool {
        !self.chain.is_empty()
    }

    /// The handle this tweet was directly retweeted from, if any.
    pub fn direct_parent(&self) -> Option<&str> {
        self.chain.first().map(|s| s.as_str())
    }
}

/// Parses one tweet's text.
pub fn parse_tweet(text: &str) -> ParsedTweet {
    let mut chain = Vec::new();
    let mut rest = text.trim();
    // Peel `RT @handle:` prefixes.
    while let Some(after_rt) = rest.strip_prefix("RT @") {
        let Some(colon) = after_rt.find(':') else {
            // Truncated chain fragment ("RT @ali" cut at 140 chars):
            // the handle is unusable; stop and treat the remainder as
            // opaque body.
            break;
        };
        let handle = &after_rt[..colon];
        if handle.is_empty() || !handle.chars().all(valid_handle_char) {
            break;
        }
        chain.push(handle.to_string());
        rest = after_rt[colon + 1..].trim_start();
    }
    let body = rest.to_string();
    let mut hashtags = Vec::new();
    let mut urls = Vec::new();
    for word in body.split_whitespace() {
        if let Some(tag) = word.strip_prefix('#') {
            let tag: String = tag.chars().take_while(|c| c.is_alphanumeric()).collect();
            if !tag.is_empty() {
                hashtags.push(tag);
            }
        } else if word.starts_with("http://") || word.starts_with("https://") {
            let url: String = word
                .chars()
                .take_while(|&c| !c.is_whitespace() && c != ',' && c != ';')
                .collect();
            urls.push(url);
        }
    }
    ParsedTweet {
        chain,
        body,
        hashtags,
        urls,
    }
}

fn valid_handle_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_tweet() {
        let p = parse_tweet("just some words");
        assert!(!p.is_retweet());
        assert_eq!(p.body, "just some words");
        assert!(p.hashtags.is_empty());
        assert!(p.urls.is_empty());
        assert_eq!(p.direct_parent(), None);
    }

    #[test]
    fn single_retweet() {
        let p = parse_tweet("RT @alice: hello world");
        assert_eq!(p.chain, vec!["alice"]);
        assert_eq!(p.body, "hello world");
        assert_eq!(p.direct_parent(), Some("alice"));
    }

    #[test]
    fn nested_retweet_chain() {
        let p = parse_tweet("RT @a1: RT @b_2: RT @c3: msg");
        assert_eq!(p.chain, vec!["a1", "b_2", "c3"]);
        assert_eq!(p.body, "msg");
    }

    #[test]
    fn hashtags_and_urls() {
        let p = parse_tweet("RT @x: check #ICDE and #rust2012 at http://bit.ly/ab12 now");
        assert_eq!(p.hashtags, vec!["ICDE", "rust2012"]);
        assert_eq!(p.urls, vec!["http://bit.ly/ab12"]);
    }

    #[test]
    fn hashtag_punctuation_is_trimmed() {
        let p = parse_tweet("loving #rust, really");
        assert_eq!(p.hashtags, vec!["rust"]);
        let empty = parse_tweet("just a # sign");
        assert!(empty.hashtags.is_empty());
    }

    #[test]
    fn truncated_chain_degrades_gracefully() {
        // 140-char truncation can cut mid-handle; the parser must not
        // invent a bogus ancestor.
        let p = parse_tweet("RT @alice: RT @bo");
        assert_eq!(p.chain, vec!["alice"]);
        assert_eq!(p.body, "RT @bo");
    }

    #[test]
    fn mention_mid_text_is_not_a_chain() {
        let p = parse_tweet("shout out to @bob: you rock");
        assert!(!p.is_retweet());
        assert_eq!(p.body, "shout out to @bob: you rock");
    }

    #[test]
    fn https_urls_detected() {
        let p = parse_tweet("see https://example.org/x and http://bit.ly/y");
        assert_eq!(p.urls.len(), 2);
    }

    #[test]
    fn roundtrip_with_corpus_syntax() {
        use crate::corpus::Corpus;
        use flow_graph::NodeId;
        let text = format!(
            "RT @{}: RT @{}: m42 lorem ipsum",
            Corpus::handle(NodeId(5)),
            Corpus::handle(NodeId(9))
        );
        let p = parse_tweet(&text);
        assert_eq!(
            p.chain
                .iter()
                .map(|h| Corpus::user_of_handle(h).unwrap())
                .collect::<Vec<_>>(),
            vec![NodeId(5), NodeId(9)]
        );
        assert_eq!(p.body, "m42 lorem ipsum");
    }
}
