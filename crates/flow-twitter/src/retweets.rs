//! Retweet-chain reconstruction → attributed evidence (§IV-B).
//!
//! The crawl is "sparse and incomplete, containing many retweeted
//! messages without the original tweet", so preprocessing must:
//!
//! 1. group (re)tweets by their root content,
//! 2. read each retweet's ancestry chain out of its `RT @a: RT @b: …`
//!    syntax,
//! 3. *recover* tweets that are missing from the crawl but implied by a
//!    chain (including lost originals), and
//! 4. emit, per information object, the attributed flow triple
//!    `(sources, active nodes, active edges)`.
//!
//! Reconstruction can run against the known follow graph (the
//! "FaceBook or Google+" setting) or against a topology *inferred* from
//! the `@` references themselves, as the paper does for Twitter.

use crate::corpus::Corpus;
use crate::parse::parse_tweet;
use flow_graph::{DiGraph, GraphBuilder, NodeId};
use flow_icm::{AttributedEvidence, AttributedRecord};
use std::collections::{HashMap, HashSet};

/// Output of retweet reconstruction.
#[derive(Clone, Debug)]
pub struct ReconstructedEvidence {
    /// The graph the evidence is expressed over.
    pub graph: DiGraph,
    /// One attributed record per reconstructed information object.
    pub evidence: AttributedEvidence,
    /// Node ids in `graph` ↔ node ids in the corpus follow graph.
    /// (Identity when reconstructing over the known topology.)
    pub node_map: Vec<NodeId>,
    /// Objects (root messages) reconstructed.
    pub objects: usize,
    /// Users recovered purely from chain syntax (their own tweet was
    /// dropped by the crawl).
    pub recovered_users: usize,
    /// Flow edges dropped because they were absent from the known
    /// topology (always 0 when inferring topology).
    pub missing_edges: usize,
}

/// Per-object intermediate: authors and attributed parent pairs.
struct ObjectFlows {
    root_author: Option<NodeId>,
    /// `(parent, child)` attributed retweet pairs.
    pairs: HashSet<(NodeId, NodeId)>,
    /// All users seen active for this object.
    active: HashSet<NodeId>,
    /// Users seen only inside chain syntax (tweet dropped).
    implied_only: HashSet<NodeId>,
}

/// Scans the corpus's *visible* tweets and reconstructs per-object
/// attributed flows, keyed by root body.
fn collect_objects(corpus: &Corpus) -> Vec<ObjectFlows> {
    let mut by_body: HashMap<String, ObjectFlows> = HashMap::new();
    for tweet in corpus.visible_tweets() {
        let parsed = parse_tweet(&tweet.text);
        // Hashtag/URL mention tweets are not retweet objects; they are
        // handled by the unattributed pipeline. Identify message bodies
        // by the "m<id>" convention plus retweet syntax.
        let entry = by_body
            .entry(parsed.body.clone())
            .or_insert_with(|| ObjectFlows {
                root_author: None,
                pairs: HashSet::new(),
                active: HashSet::new(),
                implied_only: HashSet::new(),
            });
        entry.active.insert(tweet.author);
        entry.implied_only.remove(&tweet.author);
        if parsed.chain.is_empty() {
            entry.root_author = Some(tweet.author);
            continue;
        }
        // Chain is nearest-ancestor-first; the last handle authored the
        // original.
        let chain_users: Vec<NodeId> = parsed
            .chain
            .iter()
            .filter_map(|h| Corpus::user_of_handle(h))
            .collect();
        if chain_users.len() != parsed.chain.len() {
            continue; // unresolvable handle (foreign corpus)
        }
        // parent -> child pairs: chain[0] -> author, chain[1] -> chain[0], …
        let mut child = tweet.author;
        for &parent in &chain_users {
            entry.pairs.insert((parent, child));
            if entry.active.insert(parent) {
                entry.implied_only.insert(parent);
            }
            child = parent;
        }
        let root = *chain_users.last().expect("nonempty chain");
        // The deepest chain wins ties; any chain agrees on the true root
        // unless truncation cut it short, in which case a longer chain
        // (or the visible original) corrects it.
        entry.root_author.get_or_insert(root);
        if entry.root_author != Some(root) {
            // Conflicting roots can only come from truncated chains;
            // prefer a root that never appears as a child.
            let current = entry.root_author.expect("set above");
            if entry.pairs.iter().any(|&(_, c)| c == current) {
                entry.root_author = Some(root);
            }
        }
    }
    by_body.into_values().collect()
}

/// Reconstructs attributed evidence over the *known* follow graph of the
/// corpus. Flow pairs not present in the topology are counted in
/// `missing_edges` and dropped.
pub fn reconstruct_attributed(corpus: &Corpus) -> ReconstructedEvidence {
    let graph = corpus.graph.clone();
    let objects = collect_objects(corpus);
    let mut evidence = AttributedEvidence::new();
    let mut recovered_users = 0usize;
    let mut missing_edges = 0usize;
    let mut count = 0usize;
    for obj in &objects {
        let Some(root) = obj.root_author else {
            continue;
        };
        recovered_users += obj.implied_only.len();
        let mut edges = Vec::new();
        let mut nodes: Vec<NodeId> = obj.active.iter().copied().collect();
        nodes.sort();
        for &(p, c) in &obj.pairs {
            match graph.find_edge(p, c) {
                Some(e) => edges.push(e),
                None => missing_edges += 1,
            }
        }
        let record = AttributedRecord::from_lists(&graph, vec![root], &nodes, &edges);
        if record.validate(&graph).is_ok() {
            evidence.push(record);
            count += 1;
        }
    }
    let node_map = graph.nodes().collect();
    ReconstructedEvidence {
        graph,
        evidence,
        node_map,
        objects: count,
        recovered_users,
        missing_edges,
    }
}

/// Reconstructs attributed evidence over a topology *inferred from the
/// `@` references*: nodes are the users observed (as authors or in
/// chains), edges are the attributed `(parent, child)` pairs.
pub fn reconstruct_attributed_inferred(corpus: &Corpus) -> ReconstructedEvidence {
    let objects = collect_objects(corpus);
    // Collect users and reference pairs.
    let mut users: Vec<NodeId> = objects
        .iter()
        .flat_map(|o| o.active.iter().copied())
        .collect();
    users.sort();
    users.dedup();
    let local_of: HashMap<NodeId, NodeId> = users
        .iter()
        .enumerate()
        .map(|(i, &u)| (u, NodeId(i as u32)))
        .collect();
    let mut builder = GraphBuilder::new(users.len());
    for obj in &objects {
        for &(p, c) in &obj.pairs {
            let (lp, lc) = (local_of[&p], local_of[&c]);
            if !builder.has_edge(lp, lc) {
                builder.add_edge(lp, lc).expect("deduped");
            }
        }
    }
    let graph = builder.build();
    let mut evidence = AttributedEvidence::new();
    let mut recovered_users = 0usize;
    let mut count = 0usize;
    for obj in &objects {
        let Some(root) = obj.root_author else {
            continue;
        };
        recovered_users += obj.implied_only.len();
        let nodes: Vec<NodeId> = obj.active.iter().map(|u| local_of[u]).collect();
        let edges: Vec<_> = obj
            .pairs
            .iter()
            .map(|&(p, c)| {
                graph
                    .find_edge(local_of[&p], local_of[&c])
                    .expect("edge added above")
            })
            .collect();
        let record = AttributedRecord::from_lists(&graph, vec![local_of[&root]], &nodes, &edges);
        if record.validate(&graph).is_ok() {
            evidence.push(record);
            count += 1;
        }
    }
    ReconstructedEvidence {
        graph,
        evidence,
        node_map: users,
        objects: count,
        recovered_users,
        missing_edges: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig};
    use flow_icm::BetaIcm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus(drop_rate: f64, seed: u64) -> Corpus {
        let cfg = CorpusConfig {
            users: 120,
            drop_rate,
            hashtags: 0,
            urls: 0,
            ..Default::default()
        };
        generate(&mut StdRng::seed_from_u64(seed), &cfg)
    }

    #[test]
    fn lossless_crawl_recovers_exact_attribution() {
        // Deep cascades hit the 140-character limit, which (as in real
        // Twitter data) loses ancestry — so exactness is asserted on
        // the cascades whose texts were never truncated, and the
        // truncated remainder must stay a small, validated minority.
        let c = corpus(0.0, 11);
        let rec = reconstruct_attributed(&c);
        assert_eq!(rec.missing_edges, 0);
        // Roots whose entire cascade stayed under the limit.
        let mut truncated_roots: HashSet<u64> = HashSet::new();
        for t in &c.tweets {
            if t.text.len() >= crate::corpus::TWEET_LIMIT {
                truncated_roots.insert(t.true_root.0);
            }
        }
        let truth: HashSet<(u64, NodeId, NodeId)> = c
            .tweets
            .iter()
            .filter(|t| !truncated_roots.contains(&t.true_root.0))
            .filter_map(|t| {
                t.true_parent
                    .map(|p| (t.true_root.0, c.tweet(p).author, t.author))
            })
            .collect();
        // Every clean ground-truth pair must appear as an active edge in
        // some reconstructed record.
        let mut reconstructed: HashSet<(NodeId, NodeId)> = HashSet::new();
        for r in rec.evidence.iter() {
            for i in 0..rec.graph.edge_count() {
                let e = flow_graph::EdgeId(i as u32);
                if r.is_edge_active(e) {
                    reconstructed.insert(rec.graph.endpoints(e));
                }
            }
        }
        for &(_, p, a) in &truth {
            assert!(
                reconstructed.contains(&(p, a)),
                "clean pair {p}->{a} must be recovered"
            );
        }
        // Users "recovered" from chain syntax can only come from
        // truncated cascades here.
        if truncated_roots.is_empty() {
            assert_eq!(rec.recovered_users, 0);
        }
        assert_eq!(rec.evidence.validate(&rec.graph), Ok(()));
    }

    #[test]
    fn dropped_tweets_are_recovered_from_chains() {
        let c = corpus(0.25, 12);
        let rec = reconstruct_attributed(&c);
        // With a 25% drop there are almost surely chains citing dropped
        // ancestors.
        assert!(
            rec.recovered_users > 0,
            "chain syntax should recover dropped users"
        );
        assert_eq!(rec.evidence.validate(&rec.graph), Ok(()));
        assert!(rec.objects > 0);
    }

    #[test]
    fn inferred_topology_contains_only_observed_edges() {
        let c = corpus(0.1, 13);
        let rec = reconstruct_attributed_inferred(&c);
        assert_eq!(rec.missing_edges, 0);
        assert_eq!(rec.evidence.validate(&rec.graph), Ok(()));
        // Every inferred edge maps to a true follow edge.
        for e in rec.graph.edges() {
            let (lu, lv) = rec.graph.endpoints(e);
            let (u, v) = (rec.node_map[lu.index()], rec.node_map[lv.index()]);
            assert!(
                c.graph.has_edge(u, v),
                "inferred edge {u}->{v} must exist in the true graph"
            );
        }
    }

    #[test]
    fn trained_beta_icm_tracks_ground_truth() {
        // End-to-end: reconstruct evidence, train a betaICM, compare
        // edge means against the hidden retweet ICM on well-observed
        // edges.
        let c = corpus(0.0, 14);
        let rec = reconstruct_attributed(&c);
        let model = BetaIcm::train(rec.graph.clone(), &rec.evidence);
        let mut total_err = 0.0;
        let mut counted = 0usize;
        for e in rec.graph.edges() {
            let b = model.edge_beta(e);
            let n = b.alpha() + b.beta() - 2.0; // observations
            if n >= 30.0 {
                total_err += (b.mean() - c.retweet_truth.probability(e)).abs();
                counted += 1;
            }
        }
        assert!(counted > 10, "need well-observed edges, got {counted}");
        let mae = total_err / counted as f64;
        assert!(mae < 0.12, "mean abs error {mae}");
    }

    #[test]
    fn root_author_identified_even_when_original_dropped() {
        // Build a corpus and hide all originals explicitly.
        let mut c = corpus(0.0, 15);
        for t in &mut c.tweets {
            if t.is_original() {
                t.visible = false;
            }
        }
        let rec = reconstruct_attributed(&c);
        assert!(rec.objects > 0);
        // Every reconstructed record's source must match the hidden
        // original author of some cascade.
        let true_roots: HashSet<NodeId> = c
            .tweets
            .iter()
            .filter(|t| t.is_original())
            .map(|t| t.author)
            .collect();
        // Groups formed from 140-char-truncated chains can mis-identify
        // the root (their body text was mangled); they must stay a
        // small minority.
        let (mut good, mut bad) = (0usize, 0usize);
        for r in rec.evidence.iter() {
            for &s in &r.sources {
                if true_roots.contains(&s) {
                    good += 1;
                } else {
                    bad += 1;
                }
            }
        }
        assert!(
            bad * 10 <= good,
            "mis-identified roots must be <10%: {bad} bad vs {good} good"
        );
        assert!(rec.recovered_users > 0);
    }
}
