//! Seeded L10 violations: a writer and a reader that each spell a
//! persisted-format schema string by hand instead of rendering it from
//! the `flow_core::schema` registry.

/// Renders a snapshot header from a bare literal — the writer half of
/// the drift the lint exists to prevent.
pub fn render_header() -> String {
    format!("{}\nepoch=0\n", "flowstream-snapshot v1")
}

/// Checks a cache header against a second bare literal — the reader
/// half, free to disagree with the writer above.
pub fn header_ok(line: &str) -> bool {
    line == "flowserve-cache v3"
}

/// The escape hatch still applies per line.
pub fn golden_vector() -> &'static str {
    // flow-analyze: allow(L10: golden-file test vector)
    "flow-obs/stats-v1"
}
