// Seeded L1 violations: panic paths in non-test code.

pub fn pick(v: &[f64]) -> f64 {
    let first = v.first().unwrap();
    let last = v.last().expect("non-empty");
    if v.len() > 3 {
        panic!("too long");
    }
    first + last + v[v.len() - 1]
}
