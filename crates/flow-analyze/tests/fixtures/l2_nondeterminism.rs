// Seeded L2 violations: scheduling- and entropy-dependent constructs.

use std::collections::HashMap;
use std::time::Instant;

pub fn jitter() -> f64 {
    let t0 = Instant::now();
    let mut rng = rand::thread_rng();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    counts.insert(1, 1);
    t0.elapsed().as_secs_f64()
}
