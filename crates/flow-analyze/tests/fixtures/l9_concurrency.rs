//! Seeded L9 fixture: detached/unjoined workers and a `Relaxed` load
//! gating control flow, next to joined/scoped/counter shapes that
//! must stay quiet.
//! Never compiled — consumed by `check --paths` in the self-test.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static GATE: AtomicBool = AtomicBool::new(false);

// True positive: the JoinHandle is dropped at the call site.
pub fn fire_and_forget() {
    std::thread::spawn(run);
}

// True positive: bound but never joined or used again.
pub fn bind_and_leak() {
    let worker = std::thread::spawn(run);
    run();
}

// True positive: Relaxed load decides a branch.
pub fn gate_check() {
    if GATE.load(Ordering::Relaxed) {
        run();
    }
}

// Non-finding: the handle is joined.
pub fn joined() {
    let worker = std::thread::spawn(run);
    let _r = worker.join();
}

// Non-finding: scoped spawns join at scope exit by construction.
pub fn scoped_pool() {
    std::thread::scope(|scope| {
        scope.spawn(run);
    });
}

// Non-finding: a Relaxed counter snapshot gates nothing.
pub fn observe(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

fn run() {}
