//! Seeded L8 fixture: `Result`s dropped three ways, next to drops
//! that are propagated, logged, or infallible and must stay quiet.
//! Never compiled — consumed by `check --paths` in the self-test.

fn try_persist(x: u32) -> Result<u32, String> {
    Ok(x)
}

// True positive: `let _ =` discard.
pub fn drop_with_let(x: u32) {
    let _ = try_persist(x);
}

// True positive: `.ok();` without logging.
pub fn drop_with_ok(x: u32) {
    try_persist(x).ok();
}

// True positive: bare statement drop.
pub fn bare_statement(x: u32) {
    try_persist(x);
}

// Non-finding: the error is propagated.
pub fn propagated(x: u32) -> Result<u32, String> {
    try_persist(x)
}

// Non-finding: the drop is logged right next to it.
pub fn logged(x: u32) {
    log("persist failed; continuing with stale cache");
    try_persist(x).ok();
}

fn log(_m: &str) {}

// Non-finding: the discarded call is infallible.
pub fn infallible(x: u32) {
    let _ = double(x);
}

fn double(x: u32) -> u32 {
    x * 2
}
