//! Seeded L7 fixture: a serving entry point reaches a panicking
//! helper two hops down; an orphaned panicky function does not.
//! Never compiled — consumed by `check --paths` in the self-test.

// True positive: entry -> helper -> deep_panic.
pub fn serve_flow_query(q: u32) -> u32 {
    helper(q)
}

fn helper(q: u32) -> u32 {
    deep_panic(q)
}

fn deep_panic(q: u32) -> u32 {
    checked(q).unwrap()
}

// Non-finding: contains the same construct but no entry reaches it.
fn orphan(q: u32) -> u32 {
    checked(q).unwrap()
}

fn checked(q: u32) -> Option<u32> {
    if q > 0 {
        Some(q)
    } else {
        None
    }
}
