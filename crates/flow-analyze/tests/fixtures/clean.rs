// Remediated counterpart: the same shapes as the seeded fixtures,
// written to pass every lint.

pub fn pick(v: &[f64]) -> Option<f64> {
    let first = v.first()?;
    let last = v.last()?;
    let tail = v.get(v.len().wrapping_sub(1))?;
    Some(first + last + tail)
}

pub fn degenerate(var: f64, w: f64) -> bool {
    var <= 0.0 || (w - 1.0).abs() > f64::EPSILON
}

pub fn combine(prob_a: f64, prob_b: f64) -> f64 {
    let mix_prob = (prob_a + prob_b * 0.5).clamp(0.0, 1.0);
    mix_prob
}

pub fn escaped(x: f64) -> bool {
    // Exact-constancy sentinel, deliberately exact.
    // flow-analyze: allow(L3: constancy sentinel compares exactly by design)
    x == 0.0
}
