// Seeded L4 violation: probability arithmetic with no domain guard.

pub fn combine(prob_a: f64, prob_b: f64) -> f64 {
    let accept_prob = prob_a + prob_b * 0.5;
    accept_prob
}
