// Seeded L3 violations: bare float equality.

pub fn degenerate(var: f64, w: f64) -> bool {
    if var == 0.0 {
        return true;
    }
    w != 1.0
}
