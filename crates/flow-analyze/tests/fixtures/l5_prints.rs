// Seeded L5 violations: bare print macros in non-test core code.

pub fn noisy(step: u64, rate: f64) {
    println!("step {step}");
    eprintln!("rate {rate}");
}

pub fn escaped(step: u64) {
    // flow-analyze: allow(L5: operator-facing progress line, gated by --verbose)
    eprintln!("step {step}");
}
