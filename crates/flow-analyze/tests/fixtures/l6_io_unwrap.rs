// Seeded L6 violations: panicking and swallowed I/O in persistence
// code. Each filesystem statement must surface its Result; the
// escape-commented cleanup at the end is the sanctioned exception.

fn save(path: &std::path::Path, text: &str) {
    std::fs::write(path, text).unwrap();
    let _ = std::fs::rename(path, path.with_extension("bak"));
}

fn load(path: &std::path::Path) -> String {
    std::fs::read_to_string(path).expect("cache readable")
}

fn cleanup(dir: &std::path::Path) {
    // flow-analyze: allow(L6: best-effort temp cleanup, failure is benign)
    std::fs::remove_dir_all(dir).ok();
}
