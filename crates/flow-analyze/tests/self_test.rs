//! Self-test: the lint engine must fire on each seeded fixture, stay
//! quiet on the remediated fixture, and pass the real workspace with a
//! within-budget allowlist. Also drives the compiled binary end-to-end
//! to pin the exit-code contract.

use flow_analyze::{allowlist, check_paths, check_workspace, find_workspace_root};
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(here).expect("flow-analyze lives inside the workspace")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lints_fired(name: &str) -> Vec<&'static str> {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture(name)]).expect("fixture readable");
    let mut lints: Vec<&'static str> = findings.iter().map(|f| f.lint).collect();
    lints.dedup();
    lints
}

#[test]
fn l1_fixture_trips_panic_lint() {
    let fired = lints_fired("l1_panics.rs");
    assert!(fired.contains(&"L1"), "expected L1, got {fired:?}");
}

#[test]
fn l2_fixture_trips_determinism_lint() {
    let fired = lints_fired("l2_nondeterminism.rs");
    assert!(fired.contains(&"L2"), "expected L2, got {fired:?}");
}

#[test]
fn l3_fixture_trips_float_eq_lint() {
    let fired = lints_fired("l3_float_eq.rs");
    assert!(fired.contains(&"L3"), "expected L3, got {fired:?}");
}

#[test]
fn l4_fixture_trips_probability_domain_lint() {
    let fired = lints_fired("l4_prob_domain.rs");
    assert!(fired.contains(&"L4"), "expected L4, got {fired:?}");
}

#[test]
fn l5_fixture_trips_print_lint() {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture("l5_prints.rs")]).expect("fixture readable");
    let l5: Vec<_> = findings.iter().filter(|f| f.lint == "L5").collect();
    // Two bare prints fire; the escape-commented one does not.
    assert_eq!(l5.len(), 2, "expected 2 L5 findings, got {l5:#?}");
}

#[test]
fn l6_fixture_trips_io_hygiene_lint() {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture("l6_io_unwrap.rs")]).expect("fixture readable");
    let l6: Vec<_> = findings.iter().filter(|f| f.lint == "L6").collect();
    // The unwrapped write, the discarded rename, and the expected read
    // fire; the escape-commented remove_dir_all does not.
    assert_eq!(l6.len(), 3, "expected 3 L6 findings, got {l6:#?}");
}

#[test]
fn l7_fixture_reports_the_reachable_panic_with_its_chain() {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture("l7_panic_reach.rs")]).expect("fixture readable");
    let l7: Vec<_> = findings.iter().filter(|f| f.lint == "L7").collect();
    // Only the panic reachable from the entry fires; the orphaned
    // panicky function stays quiet under L7 (it is still an L1 site).
    assert_eq!(l7.len(), 1, "expected 1 L7 finding, got {l7:#?}");
    assert!(
        l7[0]
            .message
            .contains("serve_flow_query -> helper -> deep_panic"),
        "chain missing from message: {}",
        l7[0].message
    );
}

#[test]
fn l8_fixture_trips_on_each_discard_shape_only() {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture("l8_error_drop.rs")]).expect("fixture readable");
    let l8: Vec<_> = findings.iter().filter(|f| f.lint == "L8").collect();
    // `let _ =`, unlogged `.ok();`, and the bare statement fire; the
    // propagated, logged, and infallible drops do not.
    assert_eq!(l8.len(), 3, "expected 3 L8 findings, got {l8:#?}");
}

#[test]
fn l9_fixture_trips_on_detached_workers_and_relaxed_gates_only() {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture("l9_concurrency.rs")]).expect("fixture readable");
    let l9: Vec<_> = findings.iter().filter(|f| f.lint == "L9").collect();
    // The dropped handle, the never-joined handle, and the gating
    // Relaxed load fire; the joined handle, the scoped spawn, and the
    // Relaxed counter snapshot do not.
    assert_eq!(l9.len(), 3, "expected 3 L9 findings, got {l9:#?}");
}

#[test]
fn l10_fixture_trips_on_bare_schema_strings_only() {
    let root = workspace_root();
    let findings =
        check_paths(&root, &[fixture("l10_schema_literal.rs")]).expect("fixture readable");
    let l10: Vec<_> = findings.iter().filter(|f| f.lint == "L10").collect();
    // The hand-spelled writer and reader literals fire; the
    // escape-commented golden vector does not.
    assert_eq!(l10.len(), 2, "expected 2 L10 findings, got {l10:#?}");
}

#[test]
fn clean_fixture_is_clean_under_every_lint() {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture("clean.rs")]).expect("fixture readable");
    assert!(findings.is_empty(), "clean fixture flagged: {findings:#?}");
}

#[test]
fn workspace_passes_the_contract() {
    let report = check_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.clean(),
        "workspace has {} unallowed finding(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 10,
        "scan saw only {} files",
        report.files_scanned
    );
    assert!(
        report.unused_entries.is_empty(),
        "stale allowlist entries: {:#?}",
        report.unused_entries
    );
}

#[test]
fn allowlist_stays_within_budget() {
    let path = workspace_root().join("crates/flow-analyze/allowlist.txt");
    let text = std::fs::read_to_string(&path).expect("allowlist.txt exists");
    let entries = allowlist::parse(&text).expect("allowlist parses");
    assert!(
        entries.len() <= allowlist::MAX_ENTRIES,
        "{} entries over budget {}",
        entries.len(),
        allowlist::MAX_ENTRIES
    );
}

#[test]
fn binary_exit_codes_match_contract() {
    let root = workspace_root();
    let bin = env!("CARGO_BIN_EXE_flow-analyze");

    // Seeded violation => exit 1.
    let bad = Command::new(bin)
        .args(["check", "--root"])
        .arg(&root)
        .arg("--paths")
        .arg(fixture("l1_panics.rs"))
        .output()
        .expect("spawn flow-analyze");
    assert_eq!(
        bad.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&bad.stdout)
    );

    // Remediated workspace => exit 0.
    let good = Command::new(bin)
        .args(["check", "--root"])
        .arg(&root)
        .output()
        .expect("spawn flow-analyze");
    assert_eq!(
        good.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&good.stdout),
        String::from_utf8_lossy(&good.stderr)
    );

    // Usage error => exit 2.
    let usage = Command::new(bin)
        .arg("frobnicate")
        .output()
        .expect("spawn flow-analyze");
    assert_eq!(usage.status.code(), Some(2));

    // No subcommand at all is also a usage error => exit 2, on stderr.
    let bare = Command::new(bin).output().expect("spawn flow-analyze");
    assert_eq!(bare.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&bare.stderr).contains("USAGE"),
        "usage text must go to stderr on a usage error"
    );

    // Asking for help is not an error => exit 0, on stdout.
    let help = Command::new(bin)
        .arg("--help")
        .output()
        .expect("spawn flow-analyze");
    assert_eq!(help.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&help.stdout).contains("USAGE"));

    // An unreadable baseline is an infra failure, not usage => exit 1.
    let infra = Command::new(bin)
        .args(["check", "--root"])
        .arg(&root)
        .args(["--baseline", "/nonexistent/baseline.json"])
        .output()
        .expect("spawn flow-analyze");
    assert_eq!(infra.status.code(), Some(1));
}

#[test]
fn json_report_is_byte_identical_and_roundtrips_as_a_baseline() {
    let root = workspace_root();
    let bin = env!("CARGO_BIN_EXE_flow-analyze");
    let run = || {
        let out = Command::new(bin)
            .args(["check", "--root"])
            .arg(&root)
            .args(["--format", "json"])
            .output()
            .expect("spawn flow-analyze");
        assert_eq!(out.status.code(), Some(0), "workspace must be clean");
        out.stdout
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "two JSON runs must be byte-identical");

    // The emitted report doubles as a baseline: feeding it back into
    // the differ must pass (same counts by definition).
    let tmp = std::env::temp_dir().join(format!("flow-analyze-report-{}.json", std::process::id()));
    std::fs::write(&tmp, &first).expect("write report");
    let roundtrip = Command::new(bin)
        .args(["check", "--root"])
        .arg(&root)
        .arg("--baseline")
        .arg(&tmp)
        .output()
        .expect("spawn flow-analyze");
    let _ = std::fs::remove_file(&tmp);
    assert_eq!(
        roundtrip.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&roundtrip.stderr)
    );
}

#[test]
fn committed_baseline_matches_current_suppression_counts() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("crates/flow-analyze/analyze-baseline.json"))
        .expect("analyze-baseline.json is committed");
    let base = flow_analyze::baseline::parse(&text).expect("baseline parses");
    let report = check_workspace(&root).expect("workspace scan");
    let counts = report.suppression_counts();
    let failures = flow_analyze::baseline::compare(&counts, &base);
    assert!(failures.is_empty(), "ratchet violations: {failures:#?}");
}

#[test]
fn stale_allowlist_entry_fails_the_check() {
    let bin = env!("CARGO_BIN_EXE_flow-analyze");
    let tmp = std::env::temp_dir().join(format!("flow-analyze-stale-{}", std::process::id()));
    let crate_src = tmp.join("crates/flow-stats/src");
    let analyze_dir = tmp.join("crates/flow-analyze");
    std::fs::create_dir_all(&crate_src).expect("mkdir");
    std::fs::create_dir_all(&analyze_dir).expect("mkdir");
    std::fs::write(tmp.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(crate_src.join("lib.rs"), "pub fn noop() {}\n").expect("write source");
    std::fs::write(
        analyze_dir.join("allowlist.txt"),
        "L1 crates/flow-stats/src/gone.rs -- this file no longer exists\n",
    )
    .expect("write allowlist");
    let out = Command::new(bin)
        .args(["check", "--root"])
        .arg(&tmp)
        .output()
        .expect("spawn flow-analyze");
    let _ = std::fs::remove_dir_all(&tmp);
    assert_eq!(
        out.status.code(),
        Some(1),
        "stale allowlist entries must fail; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("stale"),
        "stale entry must be reported as an error"
    );
}
