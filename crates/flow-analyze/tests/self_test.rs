//! Self-test: the lint engine must fire on each seeded fixture, stay
//! quiet on the remediated fixture, and pass the real workspace with a
//! within-budget allowlist. Also drives the compiled binary end-to-end
//! to pin the exit-code contract.

use flow_analyze::{allowlist, check_paths, check_workspace, find_workspace_root};
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(here).expect("flow-analyze lives inside the workspace")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lints_fired(name: &str) -> Vec<&'static str> {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture(name)]).expect("fixture readable");
    let mut lints: Vec<&'static str> = findings.iter().map(|f| f.lint).collect();
    lints.dedup();
    lints
}

#[test]
fn l1_fixture_trips_panic_lint() {
    let fired = lints_fired("l1_panics.rs");
    assert!(fired.contains(&"L1"), "expected L1, got {fired:?}");
}

#[test]
fn l2_fixture_trips_determinism_lint() {
    let fired = lints_fired("l2_nondeterminism.rs");
    assert!(fired.contains(&"L2"), "expected L2, got {fired:?}");
}

#[test]
fn l3_fixture_trips_float_eq_lint() {
    let fired = lints_fired("l3_float_eq.rs");
    assert!(fired.contains(&"L3"), "expected L3, got {fired:?}");
}

#[test]
fn l4_fixture_trips_probability_domain_lint() {
    let fired = lints_fired("l4_prob_domain.rs");
    assert!(fired.contains(&"L4"), "expected L4, got {fired:?}");
}

#[test]
fn l5_fixture_trips_print_lint() {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture("l5_prints.rs")]).expect("fixture readable");
    let l5: Vec<_> = findings.iter().filter(|f| f.lint == "L5").collect();
    // Two bare prints fire; the escape-commented one does not.
    assert_eq!(l5.len(), 2, "expected 2 L5 findings, got {l5:#?}");
}

#[test]
fn l6_fixture_trips_io_hygiene_lint() {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture("l6_io_unwrap.rs")]).expect("fixture readable");
    let l6: Vec<_> = findings.iter().filter(|f| f.lint == "L6").collect();
    // The unwrapped write, the discarded rename, and the expected read
    // fire; the escape-commented remove_dir_all does not.
    assert_eq!(l6.len(), 3, "expected 3 L6 findings, got {l6:#?}");
}

#[test]
fn clean_fixture_is_clean_under_every_lint() {
    let root = workspace_root();
    let findings = check_paths(&root, &[fixture("clean.rs")]).expect("fixture readable");
    assert!(findings.is_empty(), "clean fixture flagged: {findings:#?}");
}

#[test]
fn workspace_passes_the_contract() {
    let report = check_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.clean(),
        "workspace has {} unallowed finding(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 10,
        "scan saw only {} files",
        report.files_scanned
    );
    assert!(
        report.unused_entries.is_empty(),
        "stale allowlist entries: {:#?}",
        report.unused_entries
    );
}

#[test]
fn allowlist_stays_within_budget() {
    let path = workspace_root().join("crates/flow-analyze/allowlist.txt");
    let text = std::fs::read_to_string(&path).expect("allowlist.txt exists");
    let entries = allowlist::parse(&text).expect("allowlist parses");
    assert!(
        entries.len() <= allowlist::MAX_ENTRIES,
        "{} entries over budget {}",
        entries.len(),
        allowlist::MAX_ENTRIES
    );
}

#[test]
fn binary_exit_codes_match_contract() {
    let root = workspace_root();
    let bin = env!("CARGO_BIN_EXE_flow-analyze");

    // Seeded violation => exit 1.
    let bad = Command::new(bin)
        .args(["check", "--root"])
        .arg(&root)
        .arg("--paths")
        .arg(fixture("l1_panics.rs"))
        .output()
        .expect("spawn flow-analyze");
    assert_eq!(
        bad.status.code(),
        Some(1),
        "stdout: {}",
        String::from_utf8_lossy(&bad.stdout)
    );

    // Remediated workspace => exit 0.
    let good = Command::new(bin)
        .args(["check", "--root"])
        .arg(&root)
        .output()
        .expect("spawn flow-analyze");
    assert_eq!(
        good.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&good.stdout),
        String::from_utf8_lossy(&good.stderr)
    );

    // Usage error => exit 2.
    let usage = Command::new(bin)
        .arg("frobnicate")
        .output()
        .expect("spawn flow-analyze");
    assert_eq!(usage.status.code(), Some(2));
}
