//! The suppression-count ratchet.
//!
//! `analyze-baseline.json` (committed at the workspace root of the
//! analyzer crate) records, per lint, how many suppressions — escape
//! comments plus allowlist entries — are currently in effect. The
//! ratchet only turns one way:
//!
//! * current > baseline → **regression**: a new suppression slipped
//!   in; fix the finding instead, or consciously regenerate the
//!   baseline with `--write-baseline` in the same change that adds
//!   the justified escape.
//! * current < baseline → **stale baseline**: debt was paid down but
//!   the committed file still advertises the old count; regenerate so
//!   the lower number becomes the new ceiling.
//!
//! Either direction fails the check, so the committed number always
//! equals reality and can only decrease over time without an explicit
//! regeneration in the diff.
//!
//! [`parse`] accepts either the bare baseline file or a full
//! `--format json` report (which embeds the same object under its
//! `"baseline"` key) — a report round-trips through the differ.

use serde_json::Value;
use std::collections::BTreeMap;

/// Parsed baseline: per-lint suppression ceilings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Lint id → count of justified suppressions.
    pub suppressions: BTreeMap<String, u64>,
}

/// Parses baseline JSON — either the bare `analyze-baseline.json`
/// object or a full report embedding one under `"baseline"`.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let value: Value = serde_json::from_str(text).map_err(|e| format!("baseline: {e}"))?;
    let obj = match value.get("baseline") {
        Some(inner) => inner,
        None => &value,
    };
    match obj.get("version") {
        Some(Value::U64(1)) => {}
        Some(other) => return Err(format!("baseline: unsupported version {other:?}")),
        None => return Err("baseline: missing `version` field".into()),
    }
    let mut suppressions = BTreeMap::new();
    match obj.get("suppressions") {
        Some(Value::Object(fields)) => {
            for (lint, count) in fields {
                let n = match count {
                    Value::U64(n) => *n,
                    other => {
                        return Err(format!(
                        "baseline: count for {lint} must be a non-negative integer, got {other:?}"
                    ))
                    }
                };
                if suppressions.insert(lint.clone(), n).is_some() {
                    return Err(format!("baseline: duplicate lint {lint}"));
                }
            }
        }
        _ => return Err("baseline: missing `suppressions` object".into()),
    }
    Ok(Baseline { suppressions })
}

/// Diffs current suppression counts against the committed baseline.
/// Returns human-readable failures; empty means the ratchet holds.
pub fn compare(current: &BTreeMap<&str, usize>, baseline: &Baseline) -> Vec<String> {
    let mut failures = Vec::new();
    let mut lints: Vec<&str> = current.keys().copied().collect();
    for lint in baseline.suppressions.keys() {
        if !current.contains_key(lint.as_str()) {
            lints.push(lint);
        }
    }
    lints.sort_unstable();
    lints.dedup();
    for lint in lints {
        let cur = *current.get(lint).unwrap_or(&0) as u64;
        let base = *baseline.suppressions.get(lint).unwrap_or(&0);
        if cur > base {
            failures.push(format!(
                "{lint}: {cur} suppressions exceed the baseline ceiling of {base}; fix the new finding or regenerate the baseline with --write-baseline alongside a justified escape"
            ));
        } else if cur < base {
            failures.push(format!(
                "{lint}: baseline is stale ({base} committed, {cur} in effect); regenerate with --write-baseline so the ratchet tightens"
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&'static str, usize)]) -> BTreeMap<&'static str, usize> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn parse_accepts_bare_baseline() {
        let b = parse(r#"{"version": 1, "suppressions": {"L1": 4, "L9": 1}}"#).expect("parse");
        assert_eq!(b.suppressions.get("L1"), Some(&4));
        assert_eq!(b.suppressions.get("L9"), Some(&1));
    }

    #[test]
    fn parse_accepts_embedded_report_baseline() {
        let b = parse(
            r#"{"version": 1, "findings": [], "baseline": {"version": 1, "suppressions": {"L2": 2}}}"#,
        )
        .expect("parse");
        assert_eq!(b.suppressions.get("L2"), Some(&2));
    }

    #[test]
    fn parse_rejects_bad_shapes() {
        for bad in [
            "",
            "[]",
            r#"{"suppressions": {}}"#,
            r#"{"version": 2, "suppressions": {}}"#,
            r#"{"version": 1}"#,
            r#"{"version": 1, "suppressions": {"L1": -3}}"#,
            r#"{"version": 1, "suppressions": {"L1": "many"}}"#,
        ] {
            assert!(parse(bad).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn ratchet_fails_both_directions() {
        let base = parse(r#"{"version": 1, "suppressions": {"L1": 2, "L8": 1}}"#).expect("parse");
        assert!(compare(&counts(&[("L1", 2), ("L8", 1)]), &base).is_empty());
        let up = compare(&counts(&[("L1", 3), ("L8", 1)]), &base);
        assert_eq!(up.len(), 1);
        assert!(up[0].contains("exceed"));
        let down = compare(&counts(&[("L1", 2)]), &base);
        assert_eq!(down.len(), 1);
        assert!(down[0].contains("stale"));
        let new_lint = compare(&counts(&[("L1", 2), ("L8", 1), ("L9", 1)]), &base);
        assert_eq!(new_lint.len(), 1);
        assert!(new_lint[0].starts_with("L9"));
    }
}
