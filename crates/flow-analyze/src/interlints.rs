//! Interprocedural lints over the workspace call graph: L7–L9.
//!
//! * **L7 — panic-reachability.** Any path from a serving or sampling
//!   entry point (a `pub fn` of `flow-serve` or `flow-mcmc`, or any
//!   `pub fn` named `serve_*`/`handle_*`/`sample_*`) into a function
//!   whose body contains an L1 panic construct is reported with the
//!   full call chain. The line lint L1 already rejects *unescaped*
//!   panic sites; L7 exists because a justification that is sound for
//!   a leaf utility ("documented panicking wrapper") is a different
//!   claim when the serving hot path can reach it — each reachable
//!   site must carry its own L7 justification or be made fallible.
//! * **L8 — error-drop taint.** A call to a `Result`-returning
//!   workspace function (or any `try_*`) whose value is discarded via
//!   `let _ =`, a bare `;`-statement, or a trailing `.ok();` without
//!   logging, in core-crate non-test code. The type checker cannot see
//!   this (`.ok()` launders the `#[must_use]`), and a swallowed error
//!   mid-chain is exactly how estimator corruption goes invisible.
//!   The serving persistence layer is carved out: L6 already governs
//!   I/O discards there with stricter semantics.
//! * **L9 — concurrency audit.** Spawned workers whose `JoinHandle`
//!   is dropped or never joined (scoped spawns under `thread::scope`
//!   are exempt — the scope joins), and `Ordering::Relaxed` atomic
//!   loads that gate control flow (`if`/`while` conditions, boolean
//!   gate functions): a stale gate read reorders against the state it
//!   protects.
//!
//! All three honour the same `// flow-analyze: allow(Lx: why)` escape
//! comments and allowlist machinery as the line lints.

use crate::graph::{call_sites, CallGraph, CallKind, CallSite};
use crate::lints::{in_core_scope, panic_construct_lines, Finding, SERVE_PERSISTENCE};
use crate::source::SourceFile;
use crate::symbols::{FnSym, SymbolTable};
use std::collections::BTreeMap;

/// Inputs of one interprocedural pass.
pub struct InterContext<'a> {
    /// Symbols of every scanned file.
    pub table: &'a SymbolTable,
    /// The call graph over those symbols.
    pub graph: &'a CallGraph,
    /// The scanned files themselves (same order the table was built
    /// from).
    pub files: &'a [SourceFile],
    /// `--paths` / fixture mode: every file is in L8/L9 scope instead
    /// of only the core crates.
    pub all_scope: bool,
}

/// Runs L7–L9 and returns raw findings (escape comments and the
/// allowlist are applied by the driver).
pub fn run(ctx: &InterContext<'_>) -> Vec<Finding> {
    let by_rel: BTreeMap<&str, &SourceFile> =
        ctx.files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let mut findings = Vec::new();
    l7_panic_reachability(ctx, &by_rel, &mut findings);
    l8_error_drop(ctx, &by_rel, &mut findings);
    l9_concurrency(ctx, &by_rel, &mut findings);
    findings
        .sort_by(|a, b| (a.rel.as_str(), a.line, a.lint).cmp(&(b.rel.as_str(), b.line, b.lint)));
    findings
}

/// True for the serving/sampling entry points panic-reachability
/// starts from.
pub fn is_entry(f: &FnSym) -> bool {
    if f.in_test || !f.is_pub {
        return false;
    }
    f.rel.starts_with("crates/flow-serve/src/")
        || f.rel.starts_with("crates/flow-mcmc/src/")
        || f.name.starts_with("serve_")
        || f.name.starts_with("handle_")
        || f.name.starts_with("sample_")
}

fn in_scope(ctx: &InterContext<'_>, rel: &str) -> bool {
    ctx.all_scope || in_core_scope(rel)
}

fn finding(file: &SourceFile, line: usize, lint: &'static str, message: String) -> Finding {
    Finding {
        lint,
        rel: file.rel.clone(),
        line,
        message,
        snippet: file.snippet(line),
    }
}

// ---------------------------------------------------------------- L7

fn l7_panic_reachability(
    ctx: &InterContext<'_>,
    by_rel: &BTreeMap<&str, &SourceFile>,
    findings: &mut Vec<Finding>,
) {
    let entries: Vec<usize> = ctx
        .table
        .fns
        .iter()
        .filter(|f| is_entry(f))
        .map(|f| f.id)
        .collect();
    if entries.is_empty() {
        return;
    }
    let pred = ctx.graph.reach(&entries);
    // Panic constructs per file, resolved lazily.
    let mut constructs: BTreeMap<&str, Vec<(usize, &'static str)>> = BTreeMap::new();
    let mut reported: Vec<(String, usize)> = Vec::new();
    for f in &ctx.table.fns {
        // Panics are attributed within the core runtime crates; the
        // tooling crates (analyzer, CLI glue) are not serving code and
        // method-name over-approximation would chain into them.
        if f.in_test || pred[f.id].is_none() || !in_scope(ctx, &f.rel) {
            continue;
        }
        let Some(file) = by_rel.get(f.rel.as_str()) else {
            continue;
        };
        let sites = constructs
            .entry(f.rel.as_str())
            .or_insert_with(|| panic_construct_lines(file));
        let Some(&(line, label)) = sites
            .iter()
            .find(|(line, _)| *line >= f.body.0 && *line <= f.body.1)
        else {
            continue;
        };
        // One finding per construct line, attributed to the innermost
        // (first-reported) function.
        if reported.iter().any(|(rel, l)| rel == &f.rel && *l == line) {
            continue;
        }
        reported.push((f.rel.clone(), line));
        let chain = CallGraph::chain(&pred, f.id);
        let rendered: Vec<String> = chain
            .iter()
            .map(|&(id, _)| ctx.table.fns[id].qualified())
            .collect();
        let entry = chain.first().map(|&(id, _)| &ctx.table.fns[id]);
        let entry_name = entry.map(|e| e.qualified()).unwrap_or_default();
        findings.push(finding(
            file,
            line,
            "L7",
            format!(
                "`{}` contains `{label}` and is reachable from serving/sampling entry `{entry_name}` via {}; make the path fallible or escape with a justification for this entry exposure",
                f.qualified(),
                rendered.join(" -> "),
            ),
        ));
    }
}

// ---------------------------------------------------------------- L8

/// True when `site` resolves to a `Result`-returning workspace
/// function (or carries the `try_` naming convention).
fn resolves_to_result(table: &SymbolTable, site: &CallSite) -> bool {
    if site.name.starts_with("try_") {
        return true;
    }
    let candidates: Vec<usize> = match &site.kind {
        CallKind::Qualified(q) => table
            .by_type_method
            .get(&(q.clone(), site.name.clone()))
            .cloned()
            .unwrap_or_else(|| table.by_name.get(&site.name).cloned().unwrap_or_default()),
        _ => table.by_name.get(&site.name).cloned().unwrap_or_default(),
    };
    // Over-approximating here would taint common method names; demand
    // that *every* workspace definition of the name is fallible, so a
    // hit is near-certainly a dropped Result.
    !candidates.is_empty()
        && candidates
            .iter()
            .all(|&id| table.fns[id].returns_result && !table.fns[id].in_test)
}

/// A logging call near the discard makes a `.ok()` drop deliberate.
fn logged_nearby(file: &SourceFile, line: usize) -> bool {
    let lo = line.saturating_sub(3);
    let hi = (line + 2).min(file.code.len());
    (lo..hi).any(|i| {
        let l = &file.code[i];
        l.contains("flow_obs") || l.contains("record(") || l.contains("log(")
    })
}

fn l8_error_drop(
    ctx: &InterContext<'_>,
    by_rel: &BTreeMap<&str, &SourceFile>,
    findings: &mut Vec<Finding>,
) {
    for fs in &ctx.table.files {
        if !in_scope(ctx, &fs.rel) || SERVE_PERSISTENCE.iter().any(|p| fs.rel.starts_with(p)) {
            continue;
        }
        let Some(file) = by_rel.get(fs.rel.as_str()) else {
            continue;
        };
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            let trimmed = code.trim();
            let line_sites = call_sites(file, (i + 1, i + 1));
            let result_site = line_sites.iter().find(|s| resolves_to_result(ctx.table, s));
            let Some(site) = result_site else {
                continue;
            };
            if trimmed.starts_with("let _ =") && !trimmed.starts_with("let _ =>") {
                findings.push(finding(
                    file,
                    i + 1,
                    "L8",
                    format!(
                        "`let _ =` discards the `Result` of `{}`; handle or propagate the error, log it explicitly, or escape with a justification",
                        site.name
                    ),
                ));
                continue;
            }
            if trimmed.ends_with(".ok();") {
                if !logged_nearby(file, i + 1) {
                    findings.push(finding(
                        file,
                        i + 1,
                        "L8",
                        format!(
                            "trailing `.ok();` swallows the error of `{}` without logging; handle it, log it, or escape with a justification",
                            site.name
                        ),
                    ));
                }
                continue;
            }
            // Bare `call(..);` statement whose *first* call is the
            // fallible one (inner calls feed the outer expression and
            // are consumed). Chains that consume the `Result` —
            // `.expect(..)`, `.unwrap_or_else(..)`, combinators — are
            // L1's territory, not a drop.
            let consumes = [
                ".expect(",
                ".unwrap",
                ".map",
                ".and_then(",
                ".or_else(",
                ".ok(",
            ]
            .iter()
            .any(|p| code.contains(p));
            let is_bare_stmt = trimmed.ends_with(");")
                && !consumes
                && !code.contains('=')
                && !code.contains('?')
                && !trimmed.starts_with("return")
                && line_sites
                    .first()
                    .is_some_and(|first| std::ptr::eq(first, site));
            if is_bare_stmt {
                findings.push(finding(
                    file,
                    i + 1,
                    "L8",
                    format!(
                        "statement drops the `Result` of `{}`; handle or propagate the error, log it explicitly, or escape with a justification",
                        site.name
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- L9

fn l9_concurrency(
    ctx: &InterContext<'_>,
    by_rel: &BTreeMap<&str, &SourceFile>,
    findings: &mut Vec<Finding>,
) {
    for f in &ctx.table.fns {
        if f.in_test || !in_scope(ctx, &f.rel) {
            continue;
        }
        let Some(file) = by_rel.get(f.rel.as_str()) else {
            continue;
        };
        let body_lines = || {
            file.code
                .iter()
                .enumerate()
                .take(f.body.1.min(file.code.len()))
                .skip(f.body.0.saturating_sub(1))
        };
        let scoped = body_lines().any(|(_, l)| l.contains("thread::scope"));
        for (i, code) in body_lines() {
            spawn_audit(file, f, code, i, scoped, &mut *findings, body_lines);
            relaxed_audit(file, f, code, i, findings);
        }
    }
}

/// Flags spawns whose `JoinHandle` is dropped or bound but never used
/// again. Scoped spawns (`scope.spawn` under `thread::scope`) are
/// exempt: the scope joins every handle at exit.
fn spawn_audit<'a, I>(
    file: &SourceFile,
    f: &FnSym,
    code: &str,
    i: usize,
    scoped: bool,
    findings: &mut Vec<Finding>,
    body_lines: impl Fn() -> I,
) where
    I: Iterator<Item = (usize, &'a String)>,
{
    let mut from = 0;
    while let Some(off) = code.get(from..).and_then(|s| s.find("spawn")) {
        let pos = from + off;
        from = pos + "spawn".len();
        let after = code[pos + 5..].chars().next();
        let before = code[..pos].chars().next_back();
        if after != Some('(') || before.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            continue;
        }
        if before == Some('.') && scoped {
            // `scope.spawn(..)` under `thread::scope`: joined at the
            // scope boundary by construction.
            continue;
        }
        let trimmed = code.trim_start();
        if let Some(rest) = trimmed.strip_prefix("let ") {
            let binding: String = rest
                .chars()
                .take_while(|&c| c.is_ascii_alphanumeric() || c == '_')
                .collect();
            if binding == "_" || binding.is_empty() {
                findings.push(finding(
                    file,
                    i + 1,
                    "L9",
                    "spawned worker's `JoinHandle` is bound to `_` and dropped; join it (or escape with a justification for detaching)"
                        .to_string(),
                ));
                continue;
            }
            // The handle must be used again somewhere in the body —
            // joined, pushed into a collection, or returned.
            let used_again = body_lines().any(|(j, l)| j != i && token_in(l, &binding))
                || code[code.find(&binding).map(|p| p + binding.len()).unwrap_or(0)..]
                    .contains(&format!("{binding}.join"));
            if !used_again {
                findings.push(finding(
                    file,
                    i + 1,
                    "L9",
                    format!(
                        "`JoinHandle` `{binding}` in `{}` is never joined or used again; a silently detached worker outlives its spawner",
                        f.qualified()
                    ),
                ));
            }
        } else {
            findings.push(finding(
                file,
                i + 1,
                "L9",
                format!(
                    "spawn in `{}` drops its `JoinHandle` at the call site; the worker is detached and failures are lost — keep and join the handle (or escape with a justification)",
                    f.qualified()
                ),
            ));
        }
    }
}

/// Flags `Ordering::Relaxed` loads that gate control flow.
fn relaxed_audit(file: &SourceFile, f: &FnSym, code: &str, i: usize, findings: &mut Vec<Finding>) {
    if !token_in(code, "Relaxed") {
        return;
    }
    if !code.contains(".load(") && !code.contains(".fetch_") {
        return;
    }
    let trimmed = code.trim_start();
    let gating = trimmed.starts_with("if ")
        || trimmed.starts_with("while ")
        || code.contains("&&")
        || code.contains("||")
        || trimmed.starts_with("return ")
        || f.returns_bool;
    if gating {
        findings.push(finding(
            file,
            i + 1,
            "L9",
            format!(
                "`Ordering::Relaxed` load in `{}` gates control flow; a stale read reorders against the state this flag protects — use `Acquire`/`Release` (or `SeqCst`), or escape with a proof that staleness is benign",
                f.qualified()
            ),
        ));
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// True when `token` appears at a token boundary in `text`.
fn token_in(text: &str, token: &str) -> bool {
    if token.is_empty() {
        return false;
    }
    let mut from = 0;
    while let Some(off) = text.get(from..).and_then(|s| s.find(token)) {
        let pos = from + off;
        let before_ok = pos == 0 || !is_ident_char(text[..pos].chars().next_back().unwrap_or(' '));
        let after_ok = !text[pos + token.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        from = pos + token.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use std::path::PathBuf;

    fn run_over(files: &[(&str, &str)]) -> Vec<Finding> {
        let scanned: Vec<SourceFile> = files
            .iter()
            .map(|(rel, text)| SourceFile::from_text(PathBuf::from(rel), (*rel).to_string(), text))
            .collect();
        let table = SymbolTable::build(&scanned);
        let graph = CallGraph::build(&table, &scanned);
        run(&InterContext {
            table: &table,
            graph: &graph,
            files: &scanned,
            all_scope: true,
        })
    }

    fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn l7_reports_the_chain_from_entry_to_panic() {
        let findings = run_over(&[(
            "crates/x/src/lib.rs",
            "pub fn serve_req() { step1(); }\n\
             fn step1() { step2(); }\n\
             fn step2() { boom.unwrap(); }\n\
             fn orphan_panicky() { boom.unwrap(); }\n",
        )]);
        let l7: Vec<_> = findings.iter().filter(|f| f.lint == "L7").collect();
        assert_eq!(l7.len(), 1, "only the reachable panic fires: {l7:#?}");
        assert!(l7[0].message.contains("serve_req -> step1 -> step2"));
        assert_eq!(l7[0].line, 3);
    }

    #[test]
    fn l7_needs_an_entry_point() {
        let findings = run_over(&[(
            "crates/x/src/lib.rs",
            "pub fn helper() { inner(); }\nfn inner() { boom.unwrap(); }\n",
        )]);
        assert!(
            !lints_of(&findings).contains(&"L7"),
            "no serving/sampling entry, no L7: {findings:#?}"
        );
    }

    #[test]
    fn l7_crosses_crates() {
        let findings = run_over(&[
            (
                "crates/flow-serve/src/engine.rs",
                "use flow_mcmc::shared_flows;\npub fn execute(q: &Q) { shared_flows(); }\n",
            ),
            (
                "crates/flow-mcmc/src/shared.rs",
                "pub fn shared_flows() { helper(); }\nfn helper() { x.expect(\"y\"); }\n",
            ),
        ]);
        let l7: Vec<_> = findings.iter().filter(|f| f.lint == "L7").collect();
        assert!(
            l7.iter().any(|f| f.rel.contains("flow-mcmc")),
            "panic in the callee crate must be attributed there: {l7:#?}"
        );
    }

    #[test]
    fn l8_flags_discarded_results_only() {
        let findings = run_over(&[(
            "crates/x/src/lib.rs",
            "fn try_persist(x: u32) -> Result<u32, E> { Ok(x) }\n\
             pub fn a(x: u32) {\n    let _ = try_persist(x);\n}\n\
             pub fn b(x: u32) {\n    try_persist(x).ok();\n}\n\
             pub fn c(x: u32) -> Result<u32, E> {\n    try_persist(x)\n}\n\
             pub fn d(x: u32) {\n    let _ = (x, 1);\n}\n",
        )]);
        let l8: Vec<_> = findings.iter().filter(|f| f.lint == "L8").collect();
        assert_eq!(l8.len(), 2, "{l8:#?}");
        assert_eq!(l8[0].line, 3);
        assert_eq!(l8[1].line, 6);
    }

    #[test]
    fn l8_respects_logging_and_infallible_calls() {
        let findings = run_over(&[(
            "crates/x/src/lib.rs",
            "fn try_save(x: u32) -> Result<u32, E> { Ok(x) }\n\
             fn cheap(x: u32) -> u32 { x }\n\
             pub fn logged(x: u32) {\n\
                 flow_obs::counter(\"drop\", 1);\n\
                 try_save(x).ok();\n\
             }\n\
             pub fn fine(x: u32) {\n    let _ = cheap(x);\n}\n",
        )]);
        assert!(
            !lints_of(&findings).contains(&"L8"),
            "logged drops and infallible calls are clean: {findings:#?}"
        );
    }

    #[test]
    fn l9_flags_detached_and_unjoined_spawns() {
        let findings = run_over(&[(
            "crates/x/src/lib.rs",
            "pub fn detached() { std::thread::spawn(run); }\n\
             pub fn underscore() { let _ = std::thread::spawn(run); }\n\
             pub fn unjoined() {\n    let h = std::thread::spawn(run);\n    other();\n}\n\
             pub fn joined() {\n    let h = std::thread::spawn(run);\n    let _r = h.join();\n}\n",
        )]);
        let l9: Vec<_> = findings.iter().filter(|f| f.lint == "L9").collect();
        assert_eq!(l9.len(), 3, "{l9:#?}");
    }

    #[test]
    fn l9_exempts_scoped_spawns() {
        let findings = run_over(&[(
            "crates/x/src/lib.rs",
            "pub fn pool() {\n\
                 std::thread::scope(|scope| {\n\
                     scope.spawn(|| {});\n\
                 });\n\
             }\n",
        )]);
        assert!(
            !lints_of(&findings).contains(&"L9"),
            "scoped spawns join at scope exit: {findings:#?}"
        );
    }

    #[test]
    fn l9_flags_relaxed_gates_but_not_counters() {
        let findings = run_over(&[(
            "crates/x/src/lib.rs",
            "pub fn enabled() -> bool {\n    GATE.load(Ordering::Relaxed)\n}\n\
             pub fn snapshot(c: &AtomicU64) -> u64 {\n    c.load(Ordering::Relaxed)\n}\n\
             pub fn guard() {\n    if FLAG.load(Ordering::Relaxed) { stop(); }\n}\n",
        )]);
        let l9: Vec<_> = findings.iter().filter(|f| f.lint == "L9").collect();
        assert_eq!(
            l9.len(),
            2,
            "gate fn + if condition, not the counter: {l9:#?}"
        );
    }
}
