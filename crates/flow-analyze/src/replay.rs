//! Replay-determinism harness: run the parallel multi-chain estimator
//! twice with identical seeds and diff the retained trajectories
//! step-by-step.
//!
//! Bit-identical checkpoint/resume (PR 1) only holds if the sampler
//! stack is free of scheduling-dependent state: no ambient RNG, no
//! wall-clock coupling into the chains, no iteration-order leaks. The
//! static pass (L2) forbids the constructs; this harness *measures* the
//! resulting guarantee — two same-seed runs of the threaded estimator
//! must agree on every retained sample of every chain, and the threaded
//! run must agree with the sequential one (per-chain RNG streams are
//! derived from the chain index, never from scheduling).

use flow_graph::generate::uniform_edges;
use flow_graph::NodeId;
use flow_icm::Icm;
use flow_mcmc::{multi_chain_flow, McmcConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replay parameters.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Master seed for the model and every chain stream.
    pub seed: u64,
    /// Number of parallel chains.
    pub chains: usize,
    /// Retained samples per chain.
    pub samples: usize,
    /// Nodes in the generated benchmark model.
    pub nodes: usize,
    /// Edges in the generated benchmark model.
    pub edges: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            seed: 7,
            chains: 4,
            samples: 2_000,
            nodes: 24,
            edges: 72,
        }
    }
}

/// A detected divergence between two same-seed trajectories.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Which comparison diverged ("replay" or "threaded-vs-sequential").
    pub comparison: &'static str,
    /// Chain index.
    pub chain: usize,
    /// Retained-sample index of the first disagreement (`None` when
    /// the series *lengths* differ).
    pub sample: Option<usize>,
    /// First run's value (or series length, for a length mismatch).
    pub a: f64,
    /// Second run's value (or series length).
    pub b: f64,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.sample {
            Some(k) => write!(
                f,
                "{}: chain {} diverges at retained sample {}: {} vs {}",
                self.comparison, self.chain, k, self.a, self.b
            ),
            None => write!(
                f,
                "{}: chain {} series lengths differ: {} vs {}",
                self.comparison, self.chain, self.a, self.b
            ),
        }
    }
}

/// The outcome of one replay audit.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Pooled estimate of the first run (for the log line).
    pub estimate: f64,
    /// Retained samples per chain actually compared.
    pub samples: usize,
    /// Chains compared.
    pub chains: usize,
    /// Every divergence found (empty = deterministic).
    pub divergences: Vec<Divergence>,
}

impl ReplayReport {
    /// True when both runs were bit-identical.
    pub fn deterministic(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Builds the benchmark model deterministically from the seed: a
/// random digraph with per-edge probabilities drawn from the same
/// seeded stream, so every invocation with one seed audits one model.
fn benchmark_icm(cfg: &ReplayConfig) -> Icm {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let graph = uniform_edges(&mut rng, cfg.nodes, cfg.edges);
    let probs: Vec<f64> = (0..graph.edge_count())
        .map(|_| 0.05 + 0.9 * rng.random::<f64>())
        .collect();
    Icm::new(graph, probs)
}

/// Diffs two multi-chain trajectory sets step-by-step.
fn diff_chains(
    comparison: &'static str,
    a: &[Vec<f64>],
    b: &[Vec<f64>],
    out: &mut Vec<Divergence>,
) {
    for (i, (ca, cb)) in a.iter().zip(b).enumerate() {
        if ca.len() != cb.len() {
            out.push(Divergence {
                comparison,
                chain: i,
                sample: None,
                a: ca.len() as f64,
                b: cb.len() as f64,
            });
            continue;
        }
        // The retained series is a 0/1 indicator, so exact comparison
        // is the *point*: any deviation is a determinism bug, not
        // floating-point noise.
        // flow-analyze: allow(L3: bit-identity audit compares exactly by design)
        if let Some(k) = ca.iter().zip(cb).position(|(x, y)| x != y) {
            out.push(Divergence {
                comparison,
                chain: i,
                sample: Some(k),
                a: ca[k],
                b: cb[k],
            });
        }
    }
}

/// Runs the audit: threaded run twice (same seed), plus threaded vs
/// sequential.
pub fn run_replay(cfg: &ReplayConfig) -> ReplayReport {
    let icm = benchmark_icm(cfg);
    let (source, sink) = (NodeId(0), NodeId((cfg.nodes - 1) as u32));
    let mcmc = McmcConfig {
        samples: cfg.samples,
        ..Default::default()
    };
    let first = multi_chain_flow(&icm, source, sink, mcmc, cfg.chains, cfg.seed, true);
    let second = multi_chain_flow(&icm, source, sink, mcmc, cfg.chains, cfg.seed, true);
    let sequential = multi_chain_flow(&icm, source, sink, mcmc, cfg.chains, cfg.seed, false);
    let mut divergences = Vec::new();
    diff_chains("replay", &first.chains, &second.chains, &mut divergences);
    diff_chains(
        "threaded-vs-sequential",
        &first.chains,
        &sequential.chains,
        &mut divergences,
    );
    ReplayReport {
        estimate: first.estimate(),
        samples: cfg.samples,
        chains: cfg.chains,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_replay_is_deterministic() {
        let report = run_replay(&ReplayConfig {
            seed: 3,
            chains: 3,
            samples: 200,
            nodes: 10,
            edges: 24,
        });
        assert!(
            report.deterministic(),
            "divergences: {:?}",
            report.divergences
        );
        assert!(report.estimate >= 0.0 && report.estimate <= 1.0);
    }

    #[test]
    fn diff_reports_first_divergence() {
        let a = vec![vec![0.0, 1.0, 1.0]];
        let b = vec![vec![0.0, 0.0, 1.0]];
        let mut out = Vec::new();
        diff_chains("replay", &a, &b, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].chain, 0);
        assert_eq!(out[0].sample, Some(1));
    }

    #[test]
    fn diff_reports_length_mismatch() {
        let a = vec![vec![0.0, 1.0]];
        let b = vec![vec![0.0]];
        let mut out = Vec::new();
        diff_chains("replay", &a, &b, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sample, None);
    }
}
