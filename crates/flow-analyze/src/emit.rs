//! Deterministic JSON rendering of a [`CheckReport`].
//!
//! The emitter is hand-rolled (no serialization framework) so the
//! byte stream is a pure function of the report: fixed key order,
//! findings pre-sorted, counts in `BTreeMap` iteration order, no
//! timestamps or absolute paths. CI runs the analyzer twice and
//! `cmp`s the outputs — any nondeterminism is itself a finding.
//!
//! The emitted report embeds the current suppression counts under the
//! `"baseline"` key in exactly the committed `analyze-baseline.json`
//! schema, so a report round-trips through the baseline differ:
//! `check --format json > r.json && check --baseline r.json` passes.

use crate::CheckReport;
use std::collections::BTreeMap;

/// Renders the full report as pretty-printed JSON (trailing newline
/// included so the file is `diff`/`cmp`-friendly).
pub fn report_json(report: &CheckReport) -> String {
    let mut findings = report.findings.clone();
    findings
        .sort_by(|a, b| (a.rel.as_str(), a.line, a.lint).cmp(&(b.rel.as_str(), b.line, b.lint)));
    let mut unused: Vec<_> = report.unused_entries.clone();
    unused.sort_by(|a, b| {
        (a.lint.as_str(), a.path_prefix.as_str()).cmp(&(b.lint.as_str(), b.path_prefix.as_str()))
    });
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"clean\": {},\n",
        if report.clean() { "true" } else { "false" }
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {");
        out.push_str(&format!("\"lint\": {}, ", escape(f.lint)));
        out.push_str(&format!("\"path\": {}, ", escape(&f.rel)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"message\": {}, ", escape(&f.message)));
        out.push_str(&format!("\"snippet\": {}}}", escape(&f.snippet)));
    }
    out.push_str(if findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"unused_allowlist\": [");
    for (i, e) in unused.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {");
        out.push_str(&format!("\"lint\": {}, ", escape(&e.lint)));
        out.push_str(&format!("\"prefix\": {}, ", escape(&e.path_prefix)));
        out.push_str(&format!(
            "\"justification\": {}}}",
            escape(&e.justification)
        ));
    }
    out.push_str(if unused.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"baseline\": ");
    let counts: BTreeMap<&str, usize> = report.suppression_counts().into_iter().collect();
    push_baseline(&counts, 1, &mut out);
    out.push_str("\n}\n");
    out
}

/// Renders just the baseline object — the schema of the committed
/// `analyze-baseline.json` file.
pub fn baseline_json(counts: &BTreeMap<&str, usize>) -> String {
    let mut out = String::new();
    push_baseline(counts, 0, &mut out);
    out.push('\n');
    out
}

fn push_baseline(counts: &BTreeMap<&str, usize>, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    out.push_str("{\n");
    out.push_str(&format!("{pad}  \"version\": 1,\n"));
    out.push_str(&format!("{pad}  \"suppressions\": {{"));
    for (i, (lint, n)) in counts.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("{pad}    {}: {n}", escape(lint)));
    }
    if counts.is_empty() {
        out.push_str("}\n");
    } else {
        out.push('\n');
        out.push_str(&format!("{pad}  }}\n"));
    }
    out.push_str(&format!("{pad}}}"));
}

/// JSON string escaping (mirrors the vendored parser's accepted
/// escapes so everything we emit re-parses).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Finding;

    fn sample_report() -> CheckReport {
        CheckReport {
            findings: vec![Finding {
                lint: "L8",
                rel: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "dropped `Result` of `try_save`".into(),
                snippet: "try_save(x).ok();".into(),
            }],
            escaped: vec![Finding {
                lint: "L1",
                rel: "crates/x/src/lib.rs".into(),
                line: 9,
                message: "m".into(),
                snippet: "s".into(),
            }],
            suppressed: vec![],
            unused_entries: vec![],
            files_scanned: 2,
        }
    }

    #[test]
    fn report_is_deterministic_and_parses() {
        let report = sample_report();
        let a = report_json(&report);
        let b = report_json(&report);
        assert_eq!(a, b, "two renders of one report must be byte-identical");
        let v: serde_json::Value = serde_json::from_str(&a).expect("emitted JSON must parse");
        assert_eq!(v.get("files_scanned"), Some(&serde_json::Value::U64(2)));
    }

    #[test]
    fn report_embeds_a_parseable_baseline() {
        let text = report_json(&sample_report());
        let parsed = crate::baseline::parse(&text).expect("report must act as a baseline");
        assert_eq!(parsed.suppressions.get("L1"), Some(&1));
    }

    #[test]
    fn empty_report_renders_empty_collections() {
        let report = CheckReport {
            findings: vec![],
            escaped: vec![],
            suppressed: vec![],
            unused_entries: vec![],
            files_scanned: 0,
        };
        let text = report_json(&report);
        let v: serde_json::Value = serde_json::from_str(&text).expect("parse");
        assert_eq!(v.get("clean"), Some(&serde_json::Value::Bool(true)));
    }

    #[test]
    fn escape_covers_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }
}
