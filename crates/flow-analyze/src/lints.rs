//! The lint vocabulary: six token-level passes over cleaned source.
//!
//! * **L1** — no panic-prone constructs (`unwrap`/`expect`/`panic!`/
//!   arithmetic slice indexing) in non-test code of the core crates;
//!   fallible paths route through `FlowError`.
//! * **L2** — determinism audit: no ambient RNG, no wall-clock reads,
//!   no `HashMap`/`HashSet` in sampler/checkpoint/learn paths
//!   (checkpoint resume is bit-identical only if these stay out).
//! * **L3** — no bare `f64` `==`/`!=` comparisons against float-typed
//!   operands (exact-constancy sentinels are escaped explicitly).
//! * **L4** — probability-domain hygiene: arithmetic assigned to a
//!   probability-named variable needs a clamp, a guard, or a
//!   `debug_assert!` within reach.
//! * **L5** — no bare `println!`/`eprintln!` in non-test core-crate
//!   code: diagnostics route through the `flow-obs` recorder (events,
//!   counters, the stderr summary sink), so console output stays a
//!   sink/CLI concern. The flow-obs sink module and the `flow-exp` CLI
//!   are the sanctioned printers and sit outside the lint's scope.
//! * **L6** — I/O error hygiene in the serving persistence layer: no
//!   `.unwrap()`/`.expect(..)` and no discarded `Result` (`let _ =`,
//!   trailing `.ok();`) on statements that touch the filesystem. A
//!   panic there turns a recoverable cache corruption into an outage
//!   and a swallowed error turns a failed save into silent data loss;
//!   failures route through `FlowError::Io` or quarantine-and-continue.
//! * **L10** — persisted-format schema strings render from the
//!   [`flow_core::schema`] registry, never as bare literals: a writer
//!   and reader that each spell the version by hand can silently
//!   drift apart. The needle list is the registry itself, so the lint
//!   can never lag a newly declared schema. Only
//!   `crates/flow-core/src/schema.rs` may spell the names out.
//!
//! Each lint honours the `// flow-analyze: allow(Lx: reason)` escape
//! comment and the allowlist file (see [`crate::allowlist`]).

use crate::source::SourceFile;

/// The core crates: the library code whose panic-freedom, float, and
/// probability-domain hygiene the workspace contract guarantees.
/// Serving is core-quality code, but deliberately not in the
/// determinism set: deadlines and worker pools use wall time and
/// unordered maps by design, and the determinism that matters (chain
/// trajectories) is enforced by contract tests instead.
pub const CORE: [&str; 9] = [
    "crates/flow-stats/src/",
    "crates/flow-icm/src/",
    "crates/flow-mcmc/src/",
    "crates/flow-learn/src/",
    "crates/flow-graph/src/",
    "crates/flow-core/src/",
    "crates/flow-obs/src/",
    "crates/flow-serve/src/",
    "crates/flow-stream/src/",
];

/// The serving persistence layer: where crash-safe cache recovery
/// (DESIGN.md §12) makes I/O error handling contractual (L6's scope;
/// L8 defers to L6 there).
pub const SERVE_PERSISTENCE: [&str; 1] = ["crates/flow-serve/src/cache"];

/// True for files in the core crates' library code — the scope of the
/// interprocedural lints L8 and L9 (and of L7's panic-site universe).
pub fn in_core_scope(rel: &str) -> bool {
    CORE.iter().any(|p| rel.starts_with(p))
}

/// One lint hit, pre-allowlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Lint id: "L1".."L6".
    pub lint: &'static str,
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// The offending raw line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.rel, self.line, self.lint, self.message, self.snippet
        )
    }
}

/// Which lints apply to a file, by workspace-relative path.
#[derive(Clone, Copy, Debug)]
pub struct LintScope {
    /// L1: no panic paths in non-test code.
    pub l1: bool,
    /// L2: determinism audit (no ambient RNG / wall-clock / hash order).
    pub l2: bool,
    /// L3: no bare float equality.
    pub l3: bool,
    /// L4: probability-domain hygiene.
    pub l4: bool,
    /// L5: no bare console printing outside sinks and the CLI.
    pub l5: bool,
    /// L6: no panicking or swallowed I/O in serving persistence paths.
    pub l6: bool,
    /// L10: no bare persisted-format schema strings outside the
    /// `flow_core::schema` registry.
    pub l10: bool,
}

impl LintScope {
    /// Every lint on (fixture / `--paths` mode).
    pub fn all() -> Self {
        LintScope {
            l1: true,
            l2: true,
            l3: true,
            l4: true,
            l5: true,
            l6: true,
            l10: true,
        }
    }

    /// Every lint off (out-of-scope files).
    pub fn none() -> Self {
        LintScope {
            l1: false,
            l2: false,
            l3: false,
            l4: false,
            l5: false,
            l6: false,
            l10: false,
        }
    }

    /// The workspace policy. L1/L3/L4 cover the core crates' library
    /// code; L2 covers the sampler/checkpoint/learn paths where
    /// bit-identical resume and seed-reproducibility are contractual.
    /// L5 covers the core crates too, carving out the flow-obs sink
    /// module — the one core-library file whose *job* is console
    /// output. (The flow-exp CLI is not a core crate and so is exempt
    /// by construction.)
    pub fn for_path(rel: &str) -> Self {
        const DETERMINISM: [&str; 3] = [
            "crates/flow-mcmc/src/",
            "crates/flow-learn/src/",
            "crates/flow-stats/src/fenwick.rs",
        ];
        /// The sanctioned printer: the flow-obs sink module renders
        /// operator summaries to stderr by design.
        const PRINT_EXEMPT: [&str; 1] = ["crates/flow-obs/src/sink.rs"];
        let core = in_core_scope(rel);
        let det = DETERMINISM.iter().any(|p| rel.starts_with(p));
        let print_exempt = PRINT_EXEMPT.iter().any(|p| rel.starts_with(p));
        let persistence = SERVE_PERSISTENCE.iter().any(|p| rel.starts_with(p));
        LintScope {
            l1: core,
            l2: det,
            l3: core,
            l4: core,
            l5: core && !print_exempt,
            l6: persistence,
            // L10 covers every crate's library and binary sources —
            // bench/CLI writers drift just as silently as core readers
            // — with the registry module itself as the sole exemption.
            l10: rel.contains("/src/") && rel != "crates/flow-core/src/schema.rs",
        }
    }
}

/// Runs every applicable lint over one file, honouring escape comments
/// (allowlist matching happens later, in the driver).
pub fn lint_file(file: &SourceFile, scope: LintScope) -> Vec<Finding> {
    lint_file_all(file, scope)
        .into_iter()
        .filter(|f| !file.is_allowed(f.line, f.lint))
        .collect()
}

/// Runs every applicable lint over one file *without* dropping
/// escape-commented findings, so the driver can count suppressions
/// (the baseline ratchet tracks escaped debt per lint).
pub fn lint_file_all(file: &SourceFile, scope: LintScope) -> Vec<Finding> {
    let mut findings = Vec::new();
    if scope.l1 {
        l1_panic_sites(file, &mut findings);
    }
    if scope.l2 {
        l2_determinism(file, &mut findings);
    }
    if scope.l3 {
        l3_float_eq(file, &mut findings);
    }
    if scope.l4 {
        l4_probability_domain(file, &mut findings);
    }
    if scope.l5 {
        l5_print_sites(file, &mut findings);
    }
    if scope.l6 {
        l6_io_error_handling(file, &mut findings);
    }
    if scope.l10 {
        l10_schema_literals(file, &mut findings);
    }
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    file: &SourceFile,
    line: usize,
    lint: &'static str,
    message: String,
) {
    findings.push(Finding {
        lint,
        rel: file.rel.clone(),
        line,
        message,
        snippet: file.snippet(line),
    });
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// True if `code[pos..]` starts with `token` at a token boundary.
fn token_at(code: &str, pos: usize, token: &str) -> bool {
    if !code[pos..].starts_with(token) {
        return false;
    }
    let before_ok = pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap_or(' '));
    let after = code[pos + token.len()..].chars().next().unwrap_or(' ');
    before_ok && !is_ident_char(after)
}

/// Finds token-boundary occurrences of `token` in `code`.
fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = code.get(from..).and_then(|s| s.find(token)) {
        let pos = from + i;
        if token_at(code, pos, token) {
            out.push(pos);
        }
        from = pos + token.len().max(1);
    }
    out
}

// ---------------------------------------------------------------- L1

/// 1-based lines of panic-prone constructs in non-test code, with a
/// short construct label. Shared by the L1 line lint and the L7
/// panic-reachability lint (which must see escaped sites too).
pub fn panic_construct_lines(file: &SourceFile) -> Vec<(usize, &'static str)> {
    const CALLS: [&str; 6] = [
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
    ];
    let mut out = Vec::new();
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for tok in CALLS {
            for pos in find_all(code, tok) {
                // `.unwrap()`/`.expect(` start with '.', so a token
                // boundary check on the leading char is unnecessary;
                // for the macros require a boundary (debug_assert! etc.
                // must not match, and neither should idents ending in
                // the macro name).
                if !tok.starts_with('.') && !token_at(code, pos, tok.trim_end_matches('!')) {
                    continue;
                }
                out.push((i + 1, tok));
            }
        }
        // Arithmetic slice indexing: `expr[i + 1]`-style indexes are
        // the classic off-by-one panic; plain `v[i]` is accepted as
        // contextually bounds-established.
        for (open, close) in index_brackets(code) {
            let inner = &code[open + 1..close];
            if inner.contains('+') || inner.contains('-') {
                out.push((i + 1, "arithmetic slice index"));
            }
        }
    }
    out
}

/// Panic-prone constructs in non-test code.
fn l1_panic_sites(file: &SourceFile, findings: &mut Vec<Finding>) {
    const WHY: [(&str, &str); 6] = [
        (".unwrap()", "`.unwrap()` panics on the failure path"),
        (".expect(", "`.expect(..)` panics on the failure path"),
        ("panic!", "`panic!` in library code"),
        ("unreachable!", "`unreachable!` in library code"),
        ("todo!", "`todo!` in library code"),
        ("unimplemented!", "`unimplemented!` in library code"),
    ];
    for (line, label) in panic_construct_lines(file) {
        let message = match WHY.iter().find(|(tok, _)| *tok == label) {
            Some((_, why)) => format!(
                "{why}; route the failure through `FlowError` (or escape with a justification)"
            ),
            None => {
                let snippet = file.snippet(line);
                format!(
                    "slice index with arithmetic can panic out of bounds (`{}`); use `.get(..)` or prove bounds and escape",
                    snippet
                )
            }
        };
        push(findings, file, line, "L1", message);
    }
}

/// All start offsets of `pat` in `code` (plain substring scan).
fn find_all(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = code.get(from..).and_then(|s| s.find(pat)) {
        out.push(from + i);
        from = from + i + pat.len().max(1);
    }
    out
}

/// `(open, close)` byte offsets of every *indexing* bracket pair on the
/// line: a `[` immediately preceded by an identifier char, `)`, or `]`
/// (i.e. not an array literal, attribute, or type).
fn index_brackets(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if !(is_ident_char(prev) || prev == ')' || prev == ']') {
            continue;
        }
        // Find the matching close on this line.
        let mut depth = 0i32;
        for (j, &c) in bytes.iter().enumerate().skip(i) {
            match c {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        out.push((i, j));
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

// ---------------------------------------------------------------- L2

/// Determinism hazards in sampler/checkpoint/learn paths.
fn l2_determinism(file: &SourceFile, findings: &mut Vec<Finding>) {
    const HAZARDS: [(&str, &str); 6] = [
        (
            "thread_rng",
            "ambient RNG breaks seed-reproducibility; thread an explicit seeded `StdRng` instead",
        ),
        (
            "from_entropy",
            "entropy-seeded RNG breaks seed-reproducibility; derive the seed from the run seed",
        ),
        (
            "Instant::now",
            "wall-clock reads make trajectories timing-dependent; keep them out of pure sampling paths",
        ),
        (
            "SystemTime::now",
            "wall-clock reads make trajectories timing-dependent; keep them out of pure sampling paths",
        ),
        (
            "HashMap",
            "HashMap iteration order is nondeterministic; use BTreeMap/Vec or sort before iterating (escape if order provably never escapes)",
        ),
        (
            "HashSet",
            "HashSet iteration order is nondeterministic; use BTreeSet/Vec or sort before iterating (escape if order provably never escapes)",
        ),
    ];
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for (tok, why) in HAZARDS {
            for _pos in token_positions(code, tok) {
                push(findings, file, i + 1, "L2", format!("`{tok}`: {why}"));
            }
        }
    }
}

// ---------------------------------------------------------------- L5

/// Bare console printing in non-test core-crate code. Library crates
/// report through the flow-obs recorder (events, counters, spans); the
/// only sanctioned printers are the flow-obs sink module and the
/// flow-exp CLI, both outside this lint's scope.
fn l5_print_sites(file: &SourceFile, findings: &mut Vec<Finding>) {
    const PRINTS: [(&str, &str); 2] = [
        (
            "println!",
            "bare stdout printing in library code; emit a flow-obs event/counter or route through a sink",
        ),
        (
            "eprintln!",
            "bare stderr printing in library code; emit a flow-obs event/counter or route through a sink",
        ),
    ];
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for (tok, why) in PRINTS {
            for _pos in token_positions(code, tok) {
                push(findings, file, i + 1, "L5", format!("`{tok}`: {why}"));
            }
        }
    }
}

// ---------------------------------------------------------------- L6

/// I/O error hygiene in serving persistence paths. The cache file is
/// where a panic turns recoverable corruption into an outage and a
/// swallowed `Result` turns a failed save into silent data loss, so
/// statements that touch the filesystem must surface their errors
/// (`?` into `FlowError::Io`, or quarantine-and-continue).
fn l6_io_error_handling(file: &SourceFile, findings: &mut Vec<Finding>) {
    const IO_MARKERS: [&str; 8] = [
        "fs::",
        "File::",
        "OpenOptions",
        ".write_all(",
        ".read_to_string(",
        ".read_to_end(",
        ".sync_all(",
        ".read_dir(",
    ];
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        if !IO_MARKERS.iter().any(|m| code.contains(m)) {
            continue;
        }
        if code.contains(".unwrap()") || code.contains(".expect(") {
            push(
                findings,
                file,
                i + 1,
                "L6",
                "`.unwrap()`/`.expect(..)` on an I/O result in a persistence path panics on a torn or missing file; surface it as `FlowError::Io` or quarantine and continue".to_string(),
            );
        }
        if code.trim_start().starts_with("let _ =") || code.contains(".ok();") {
            push(
                findings,
                file,
                i + 1,
                "L6",
                "discarded I/O result in a persistence path hides failed saves; surface it as `FlowError::Io` or quarantine and continue".to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------- L3

/// Bare float `==`/`!=` comparisons. Token-level typing is limited to
/// what the operand text reveals: a float literal (`0.0`), an `f64::`/
/// `f32::` associated constant, or an `as f64` cast on either side.
fn l3_float_eq(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for (pos, op) in eq_operators(code) {
            let left = operand_left(code, pos);
            let right = operand_right(code, pos + 2);
            if looks_float(&left) || looks_float(&right) {
                push(
                    findings,
                    file,
                    i + 1,
                    "L3",
                    format!(
                        "bare float `{op}` (`{} {op} {}`): exact float equality is brittle; compare with a tolerance, restructure, or escape an intentional exact sentinel",
                        left.trim(),
                        right.trim()
                    ),
                );
            }
        }
    }
}

/// Byte offsets of `==` / `!=` operators (excluding `<=`, `>=`, `=>`,
/// `+=`-family, and pattern `..=`).
fn eq_operators(code: &str) -> Vec<(usize, &'static str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let pair = &bytes[i..i + 2];
        if pair == b"==" {
            let prev = if i == 0 { b' ' } else { bytes[i - 1] };
            let next = bytes.get(i + 2).copied().unwrap_or(b' ');
            if !matches!(
                prev,
                b'<' | b'>'
                    | b'='
                    | b'!'
                    | b'+'
                    | b'-'
                    | b'*'
                    | b'/'
                    | b'%'
                    | b'&'
                    | b'|'
                    | b'^'
                    | b'.'
            ) && next != b'='
            {
                out.push((i, "=="));
            }
            i += 2;
            continue;
        }
        if pair == b"!=" && bytes.get(i + 2).copied().unwrap_or(b' ') != b'=' {
            out.push((i, "!="));
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Walks left from an operator to extract the left operand text,
/// stopping at a top-level expression boundary.
fn operand_left(code: &str, op_pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let mut start = 0;
    let mut i = op_pos;
    while i > 0 {
        i -= 1;
        let c = bytes[i];
        match c {
            b')' | b']' => depth += 1,
            b'(' | b'[' => {
                if depth == 0 {
                    start = i + 1;
                    break;
                }
                depth -= 1;
            }
            b';' | b',' | b'{' | b'}' | b'&' | b'|' | b'=' | b'<' | b'>' | b'!' if depth == 0 => {
                start = i + 1;
                break;
            }
            _ => {}
        }
    }
    code[start..op_pos].to_owned()
}

/// Walks right from just past an operator to extract the right operand.
fn operand_right(code: &str, from: usize) -> String {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let mut end = bytes.len();
    for (i, &c) in bytes.iter().enumerate().skip(from) {
        match c {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                if depth == 0 {
                    end = i;
                    break;
                }
                depth -= 1;
            }
            b';' | b',' | b'{' | b'}' | b'&' | b'|' | b'=' | b'<' | b'>' | b'?' if depth == 0 => {
                end = i;
                break;
            }
            _ => {}
        }
    }
    code[from..end].to_owned()
}

/// True if operand text reveals a float type.
fn looks_float(operand: &str) -> bool {
    if operand.contains("f64::")
        || operand.contains("f32::")
        || operand.contains("as f64")
        || operand.contains("as f32")
    {
        return true;
    }
    // A float literal: digit '.' digit (method calls like `x.abs()`
    // have a letter after the dot; tuple fields like `a.1` have no
    // digit before... they do: `a.1` -> '1' after dot but 'a' before is
    // not a digit).
    let b = operand.as_bytes();
    for i in 1..b.len().saturating_sub(1) {
        if b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit() {
            return true;
        }
    }
    // Trailing-dot literals like `1.` and `0.`:
    for i in 1..b.len() {
        if b[i] == b'.'
            && b[i - 1].is_ascii_digit()
            && b.get(i + 1)
                .map(|c| !is_ident_char(*c as char) && *c != b'.')
                .unwrap_or(true)
        {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------- L4

/// Probability-domain hygiene: arithmetic assigned to a variable whose
/// name marks it as a probability must carry a clamp, a domain guard,
/// or a `debug_assert!` within the statement or the six lines after it.
fn l4_probability_domain(file: &SourceFile, findings: &mut Vec<Finding>) {
    const GUARDS: [&str; 10] = [
        "clamp",
        ".min(",
        ".max(",
        "is_nan",
        "is_finite",
        "debug_assert",
        "debug_invariant",
        "assert!",
        "InvalidProbability",
        "contains(",
    ];
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let Some((lhs, eq_pos)) = assignment_lhs(code) else {
            continue;
        };
        if !lhs.to_ascii_lowercase().contains("prob") {
            continue;
        }
        // Join the statement (up to 4 lines, until ';' or '{').
        let mut stmt = code[eq_pos + 1..].to_owned();
        let mut last = i;
        while !stmt.contains(';')
            && !stmt.contains('{')
            && last + 1 < file.code.len()
            && last - i < 3
        {
            last += 1;
            if file.in_test[last] {
                break;
            }
            stmt.push(' ');
            stmt.push_str(&file.code[last]);
        }
        let stmt = stmt.split(';').next().unwrap_or("");
        if !has_domain_arithmetic(stmt) {
            continue;
        }
        let guarded = (i..(last + 7).min(file.code.len())).any(|k| {
            let l = &file.code[k];
            GUARDS.iter().any(|g| l.contains(g))
        });
        if !guarded {
            push(
                findings,
                file,
                i + 1,
                "L4",
                format!(
                    "`{lhs}` is assigned arithmetic that can leave [0, 1] with no clamp, guard, or debug_assert nearby; check the domain or escape with a proof",
                ),
            );
        }
    }
}

/// If the line is an assignment (`let x =`, `x =`, `x +=`, ...),
/// returns the final identifier of the left-hand side (indexes
/// stripped) and the byte offset of the `=`.
fn assignment_lhs(code: &str) -> Option<(String, usize)> {
    let bytes = code.as_bytes();
    // Find the first '=' that is an assignment, not a comparison.
    let mut eq = None;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'=' {
            let prev = if i == 0 { b' ' } else { bytes[i - 1] };
            let next = bytes.get(i + 1).copied().unwrap_or(b' ');
            if next == b'='
                || prev == b'='
                || next == b'>'
                || prev == b'<'
                || prev == b'>'
                || prev == b'!'
            {
                i += if next == b'=' { 2 } else { 1 };
                continue;
            }
            eq = Some((i, prev));
            break;
        }
        i += 1;
    }
    let (eq_pos, prev) = eq?;
    // For compound ops (+=, -=, *=, /=), the name ends before the op.
    let lhs_end = if matches!(prev, b'+' | b'-' | b'*' | b'/' | b'%') {
        eq_pos - 1
    } else {
        eq_pos
    };
    let lhs_text = code[..lhs_end].trim_end();
    // Strip a trailing index: `probs[i]` -> `probs`.
    let lhs_text = match lhs_text.char_indices().rev().find(|&(_, c)| c == '[') {
        Some((b, _)) if lhs_text.ends_with(']') => lhs_text[..b].trim_end(),
        _ => lhs_text,
    };
    let name: String = lhs_text
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some((name, eq_pos))
}

/// Arithmetic that can leave [0, 1]: `+`, `-` (binary), or `*` outside
/// a pure `1.0 - x` complement... kept deliberately simple: any of the
/// three operators counts; division alone does not (ratios are flagged
/// by their operands' lints).
fn has_domain_arithmetic(stmt: &str) -> bool {
    let bytes = stmt.as_bytes();
    for (i, &c) in bytes.iter().enumerate() {
        match c {
            b'+' | b'*' => {
                // Skip `+=`-parts and `*` in `**`/deref: a deref `*x`
                // has no left operand.
                if c == b'*' {
                    let prev_nonspace = stmt[..i].trim_end().chars().next_back();
                    if !prev_nonspace.is_some_and(|p| is_ident_char(p) || p == ')' || p == ']') {
                        continue;
                    }
                }
                return true;
            }
            b'-' => {
                // Binary minus only (not negation, not `->`).
                if bytes.get(i + 1) == Some(&b'>') {
                    continue;
                }
                let prev_nonspace = stmt[..i].trim_end().chars().next_back();
                if prev_nonspace
                    .is_some_and(|p| is_ident_char(p) || p == ')' || p == ']' || p == '.')
                {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

// --------------------------------------------------------------- L10

/// Bare persisted-format schema strings outside the registry module.
///
/// The needle list is built from the [`flow_core::schema`] constants
/// themselves, so declaring a new schema automatically arms the lint
/// for it — and this function contains no bare schema literal of its
/// own. A needle inside a *string literal* fires (writers and readers
/// must render through [`flow_core::schema::SchemaId`]); the same
/// words in comments or doc text do not.
fn l10_schema_literals(file: &SourceFile, findings: &mut Vec<Finding>) {
    use flow_core::schema as reg;
    const SCHEMAS: [reg::SchemaId; 8] = [
        reg::SERVE_CACHE,
        reg::STREAM_SNAPSHOT,
        reg::OBS_STATS,
        reg::PERF_BASELINE,
        reg::PERF_RUN,
        reg::BENCH_SERVE,
        reg::BENCH_SAMPLER,
        reg::BENCH_STREAM,
    ];
    for (i, raw) in file.raw.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let code = &file.code[i];
        for id in SCHEMAS {
            let Some(pos) = raw.find(id.name) else {
                continue;
            };
            // Inside a string literal iff an odd number of quote
            // delimiters precede the match on the cleaned line
            // (cleaning keeps `"` delimiters and blanks comments
            // entirely, so comment text contributes none).
            let chars_before = raw[..pos].chars().count();
            let quotes = code
                .chars()
                .take(chars_before)
                .filter(|&c| c == '"')
                .count();
            if quotes % 2 == 1 {
                push(
                    findings,
                    file,
                    i + 1,
                    "L10",
                    format!(
                        "bare schema string `{}`: render it from the `flow_core::schema` \
                         registry (header `{}`, tag `{}`) so writer and reader stay in \
                         lockstep",
                        id.name,
                        id.line_header(),
                        id.tag()
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lint(text: &str) -> Vec<Finding> {
        let f = SourceFile::from_text(PathBuf::from("x.rs"), "x.rs".into(), text);
        lint_file(&f, LintScope::all())
    }

    fn lints_of(text: &str) -> Vec<&'static str> {
        lint(text).iter().map(|f| f.lint).collect()
    }

    #[test]
    fn l1_catches_unwrap_expect_panic() {
        assert_eq!(lints_of("let x = y.unwrap();\n"), ["L1"]);
        assert_eq!(lints_of("let x = y.expect(\"msg\");\n"), ["L1"]);
        assert_eq!(lints_of("panic!(\"boom\");\n"), ["L1"]);
        assert_eq!(lints_of("unreachable!();\n"), ["L1"]);
    }

    #[test]
    fn l1_ignores_tests_comments_strings_and_asserts() {
        assert!(lints_of("#[cfg(test)]\nmod t {\n fn f() { x.unwrap(); }\n}\n").is_empty());
        assert!(lints_of("// x.unwrap()\n").is_empty());
        assert!(lints_of("let s = \"panic!\";\n").is_empty());
        assert!(lints_of("debug_assert!(x > 0.0);\n").is_empty());
    }

    #[test]
    fn l1_catches_arithmetic_indexing_only() {
        assert_eq!(lints_of("let x = v[i + 1];\n"), ["L1"]);
        assert_eq!(lints_of("let x = v[i - 1];\n"), ["L1"]);
        assert!(lints_of("let x = v[i];\n").is_empty());
        assert!(lints_of("let t = [0u8; 4];\n").is_empty());
        assert!(lints_of("let v = vec![0.0; n];\n").is_empty());
    }

    #[test]
    fn l2_catches_determinism_hazards() {
        assert_eq!(lints_of("let mut rng = rand::thread_rng();\n"), ["L2"]);
        assert_eq!(lints_of("let t0 = Instant::now();\n"), ["L2"]);
        assert_eq!(
            lints_of("let m: HashMap<u32, u32> = HashMap::new();\n").len(),
            2
        );
        assert!(lints_of("let m = BTreeMap::new();\n").is_empty());
    }

    #[test]
    fn l3_catches_float_literal_equality() {
        assert_eq!(lints_of("if var == 0.0 { return; }\n"), ["L3"]);
        assert_eq!(lints_of("if 1.0 != x { return; }\n"), ["L3"]);
        assert_eq!(lints_of("if x == f64::INFINITY { return; }\n"), ["L3"]);
        assert!(lints_of("if n == 0 { return; }\n").is_empty());
        assert!(lints_of("if x <= 0.0 { return; }\n").is_empty());
        assert!(
            lints_of("if a == b { return; }\n").is_empty(),
            "untyped operands are not flagged"
        );
    }

    #[test]
    fn l4_catches_unguarded_probability_arithmetic() {
        assert_eq!(lints_of("let prob = a * b + c;\nuse_it(prob);\n"), ["L4"]);
        assert!(lints_of("let prob = (a * b).clamp(0.0, 1.0);\n").is_empty());
        assert!(
            lints_of("let prob = a * b;\ndebug_assert!((0.0..=1.0).contains(&prob));\n").is_empty()
        );
        assert!(
            lints_of("let count = a + b;\n").is_empty(),
            "non-probability names are out of scope"
        );
        assert!(
            lints_of("let prob = p / z;\n").is_empty(),
            "plain ratios are not flagged"
        );
    }

    #[test]
    fn l5_catches_bare_prints() {
        assert_eq!(lints_of("println!(\"progress: {x}\");\n"), ["L5"]);
        assert_eq!(lints_of("eprintln!(\"warning: {e}\");\n"), ["L5"]);
        // `print` tokens inside tests, comments, and strings are fine.
        assert!(lints_of("#[cfg(test)]\nmod t {\n fn f() { println!(\"x\"); }\n}\n").is_empty());
        assert!(lints_of("// println!(\"commented out\")\n").is_empty());
        assert!(lints_of("let s = \"eprintln!\";\n").is_empty());
        // `println!` never double-counts inside `eprintln!`.
        assert_eq!(lints_of("eprintln!(\"one finding only\");\n").len(), 1);
        // The escape comment works for L5 like every other lint.
        assert!(lints_of(
            "eprintln!(\"boot\"); // flow-analyze: allow(L5: pre-recorder startup warning)\n"
        )
        .is_empty());
    }

    #[test]
    fn l5_scope_carves_out_sinks_and_cli() {
        assert!(LintScope::for_path("crates/flow-mcmc/src/sampler.rs").l5);
        assert!(LintScope::for_path("crates/flow-obs/src/recorder.rs").l5);
        assert!(
            !LintScope::for_path("crates/flow-obs/src/sink.rs").l5,
            "the sink module is the sanctioned printer"
        );
        assert!(
            !LintScope::for_path("crates/flow-exp/src/output.rs").l5,
            "the CLI crate is not core"
        );
        // flow-obs joins the core set for the panic/float/probability
        // lints but stays out of the L2 determinism set (its timing
        // channel is wall-clock by design).
        let obs = LintScope::for_path("crates/flow-obs/src/span.rs");
        assert!(obs.l1 && obs.l3 && obs.l4 && obs.l5);
        assert!(!obs.l2);
    }

    #[test]
    fn l6_catches_panicking_and_swallowed_io() {
        assert!(lints_of("std::fs::write(&path, text).unwrap();\n").contains(&"L6"));
        assert!(
            lints_of("let text = std::fs::read_to_string(&p).expect(\"readable\");\n")
                .contains(&"L6")
        );
        assert!(lints_of("let _ = std::fs::rename(&tmp, &path);\n").contains(&"L6"));
        assert!(lints_of("std::fs::remove_file(&tmp).ok();\n").contains(&"L6"));
        assert!(
            lints_of("std::fs::write(&path, text)?;\n").is_empty(),
            "surfaced I/O errors are the remediation, not a finding"
        );
        assert_eq!(
            lints_of("let x = map.get(&k).unwrap();\n"),
            ["L1"],
            "non-I/O unwraps are L1's business, not L6's"
        );
    }

    #[test]
    fn l6_scope_is_the_serving_persistence_layer() {
        assert!(LintScope::for_path("crates/flow-serve/src/cache.rs").l6);
        assert!(
            !LintScope::for_path("crates/flow-serve/src/engine.rs").l6,
            "non-persistence serving code answers to L1 alone"
        );
        assert!(!LintScope::for_path("crates/flow-mcmc/src/sampler.rs").l6);
    }

    #[test]
    fn l10_catches_bare_schema_strings() {
        assert_eq!(lints_of("let h = \"flowserve-cache v3\";\n"), ["L10"]);
        assert_eq!(lints_of("s.push_str(\"flow-bench/serve-v3\");\n"), ["L10"]);
        // Comments and doc text may spell the names freely.
        assert!(lints_of("// the flowserve-cache v3 header\n").is_empty());
        assert!(lints_of("/// parses flow-obs/stats-v1 documents\n").is_empty());
        // Rendering through the registry is the remediation.
        assert!(lints_of("let h = flow_core::schema::SERVE_CACHE.line_header();\n").is_empty());
        // Test code (golden vectors) is out of scope.
        assert!(lints_of(
            "#[cfg(test)]\nmod t {\n const H: &str = \"flowstream-snapshot v1\";\n}\n"
        )
        .is_empty());
        // The escape comment works for L10 like every other lint.
        assert!(lints_of(
            "let h = \"flowstream-snapshot v1\"; // flow-analyze: allow(L10: golden vector)\n"
        )
        .is_empty());
    }

    #[test]
    fn l10_scope_exempts_only_the_registry_module() {
        assert!(!LintScope::for_path("crates/flow-core/src/schema.rs").l10);
        assert!(LintScope::for_path("crates/flow-core/src/error.rs").l10);
        assert!(LintScope::for_path("crates/flow-bench/src/bin/bench_serve.rs").l10);
        assert!(LintScope::for_path("crates/flow-exp/src/runners/perf.rs").l10);
        assert!(!LintScope::for_path("crates/flow-serve/tests/serving.rs").l10);
    }

    #[test]
    fn escape_comment_suppresses() {
        assert!(lints_of(
            "let x = y.unwrap(); // flow-analyze: allow(L1: infallible by construction)\n"
        )
        .is_empty());
        assert!(
            lints_of("// flow-analyze: allow(L3: exact sentinel)\nif x == 0.0 {}\n").is_empty()
        );
        // The wrong lint id does not suppress.
        assert_eq!(
            lints_of("let x = y.unwrap(); // flow-analyze: allow(L2)\n"),
            ["L1"]
        );
    }
}
