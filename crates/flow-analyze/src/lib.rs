//! `flow-analyze`: the workspace's correctness tooling.
//!
//! Two subsystems, both dependency-free beyond the workspace itself:
//!
//! * **`check`** — static analysis in two layers (no `syn`; the
//!   vendor directory is the only dependency source): a token-level
//!   pass enforcing the line lints L1–L6 and L10 over the core crates
//!   (L10 reaches every crate's sources), and a
//!   workspace symbol graph ([`symbols`], [`graph`]) feeding the
//!   interprocedural lints L7–L9 ([`interlints`]) — panic
//!   reachability from serving/sampling entry points, dropped
//!   `Result` taint, and a concurrency audit (unjoined spawns,
//!   `Relaxed` control-flow gates). Suppressions go through
//!   `// flow-analyze: allow(Lx: why)` escape comments or the
//!   budget-capped allowlist (`crates/flow-analyze/allowlist.txt`);
//!   their per-lint counts are ratcheted by the committed
//!   `analyze-baseline.json` ([`baseline`]) and emitted
//!   deterministically as JSON ([`emit`]).
//! * **`replay`** — a runtime determinism audit: the parallel
//!   multi-chain estimator is run twice with identical seeds and the
//!   retained trajectories are diffed step-by-step; any divergence is
//!   a scheduling/nondeterminism bug.
//!
//! See DESIGN.md §9 (line lints) and §13 (symbol graph + ratchet)
//! for the full contract.

pub mod allowlist;
pub mod baseline;
pub mod emit;
pub mod graph;
pub mod interlints;
pub mod lints;
pub mod replay;
pub mod source;
pub mod symbols;

use graph::CallGraph;
use interlints::InterContext;
use lints::{Finding, LintScope};
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use symbols::SymbolTable;

/// The outcome of a `check` run.
#[derive(Debug)]
pub struct CheckReport {
    /// Findings that survived escapes and the allowlist: failures.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an in-source escape comment.
    pub escaped: Vec<Finding>,
    /// Findings suppressed by the allowlist (shown in verbose mode).
    pub suppressed: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale debts; these
    /// fail the check — suppression drift may not accumulate).
    pub unused_entries: Vec<allowlist::Entry>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl CheckReport {
    /// True when the workspace passes the contract: no live findings
    /// and no stale allowlist entries.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.unused_entries.is_empty()
    }

    /// Per-lint counts of every suppression in effect (escape
    /// comments + allowlist entries). This is the quantity the
    /// baseline ratchet tracks: it may only go down.
    pub fn suppression_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for f in self.escaped.iter().chain(self.suppressed.iter()) {
            *counts.entry(f.lint).or_insert(0) += 1;
        }
        counts
    }
}

/// Scans every `.rs` file under the workspace's `crates/` tree,
/// applies the workspace lint policy (line lints L1–L6 and L10 per
/// [`LintScope::for_path`], interprocedural lints L7–L9 over the
/// whole graph) plus the allowlist at
/// `crates/flow-analyze/allowlist.txt` (if present).
pub fn check_workspace(root: &Path) -> Result<CheckReport, String> {
    let mut paths = Vec::new();
    collect_rs_files(&root.join("crates"), &mut paths)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    paths.sort();
    let allowlist_path = root.join("crates/flow-analyze/allowlist.txt");
    let entries = if allowlist_path.exists() {
        let text = std::fs::read_to_string(&allowlist_path)
            .map_err(|e| format!("reading {}: {e}", allowlist_path.display()))?;
        allowlist::parse(&text).map_err(|e| e.to_string())?
    } else {
        Vec::new()
    };
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        files.push(SourceFile::read(path, root).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    let mut raw = Vec::new();
    for file in &files {
        let scope = LintScope::for_path(&file.rel);
        if scope.l1 || scope.l2 || scope.l3 || scope.l4 || scope.l5 || scope.l10 {
            raw.extend(lints::lint_file_all(file, scope));
        }
    }
    // The symbol graph spans *every* workspace file so cross-crate
    // reachability is complete even where line lints are off.
    let table = SymbolTable::build(&files);
    let call_graph = CallGraph::build(&table, &files);
    raw.extend(interlints::run(&InterContext {
        table: &table,
        graph: &call_graph,
        files: &files,
        all_scope: false,
    }));
    let (kept, escaped) = partition_escaped(raw, &files);
    let (findings, suppressed, unused_entries) = allowlist::apply(kept, &entries);
    Ok(CheckReport {
        findings,
        escaped,
        suppressed,
        unused_entries,
        files_scanned: files.len(),
    })
}

/// Lints explicit files with *every* lint enabled — line lints and
/// the interprocedural set over a symbol graph of just those files
/// (used by the self-test fixtures and `check --paths`). No allowlist
/// applies; escape comments still do.
pub fn check_paths(root: &Path, paths: &[PathBuf]) -> Result<Vec<Finding>, String> {
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        files.push(SourceFile::read(path, root).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    let mut raw = Vec::new();
    for file in &files {
        raw.extend(lints::lint_file_all(file, LintScope::all()));
    }
    let table = SymbolTable::build(&files);
    let call_graph = CallGraph::build(&table, &files);
    raw.extend(interlints::run(&InterContext {
        table: &table,
        graph: &call_graph,
        files: &files,
        all_scope: true,
    }));
    let (kept, _escaped) = partition_escaped(raw, &files);
    Ok(kept)
}

/// Splits raw findings into (live, escaped-by-comment). Escaped
/// findings stay visible to the baseline ratchet.
fn partition_escaped(raw: Vec<Finding>, files: &[SourceFile]) -> (Vec<Finding>, Vec<Finding>) {
    let by_rel: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let mut kept = Vec::new();
    let mut escaped = Vec::new();
    for f in raw {
        let allowed = by_rel
            .get(f.rel.as_str())
            .is_some_and(|file| file.is_allowed(f.line, f.lint));
        if allowed {
            escaped.push(f);
        } else {
            kept.push(f);
        }
    }
    (kept, escaped)
}

/// Recursively collects `.rs` files, skipping `target/` and the
/// lint fixtures (which are deliberate violations).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
