//! `flow-analyze`: the workspace's correctness tooling.
//!
//! Two subsystems, both dependency-free beyond the workspace itself:
//!
//! * **`check`** — a token-level static-analysis pass (no `syn`; the
//!   vendor directory is the only dependency source) enforcing the
//!   lint contract L1–L6 over the core crates, with a justified
//!   allowlist (`crates/flow-analyze/allowlist.txt`, budget-capped)
//!   and `// flow-analyze: allow(Lx: why)` escape comments.
//! * **`replay`** — a runtime determinism audit: the parallel
//!   multi-chain estimator is run twice with identical seeds and the
//!   retained trajectories are diffed step-by-step; any divergence is
//!   a scheduling/nondeterminism bug.
//!
//! See DESIGN.md §9 for the full contract.

pub mod allowlist;
pub mod lints;
pub mod replay;
pub mod source;

use lints::{Finding, LintScope};
use source::SourceFile;
use std::path::{Path, PathBuf};

/// The outcome of a `check` run.
#[derive(Debug)]
pub struct CheckReport {
    /// Findings that survived escapes and the allowlist: failures.
    pub findings: Vec<Finding>,
    /// Findings suppressed by the allowlist (shown in verbose mode).
    pub suppressed: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale debts).
    pub unused_entries: Vec<allowlist::Entry>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl CheckReport {
    /// True when the workspace passes the contract.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scans every `.rs` file under the workspace's `crates/` tree and
/// applies the workspace lint policy plus the allowlist at
/// `crates/flow-analyze/allowlist.txt` (if present).
pub fn check_workspace(root: &Path) -> Result<CheckReport, String> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;
    files.sort();
    let allowlist_path = root.join("crates/flow-analyze/allowlist.txt");
    let entries = if allowlist_path.exists() {
        let text = std::fs::read_to_string(&allowlist_path)
            .map_err(|e| format!("reading {}: {e}", allowlist_path.display()))?;
        allowlist::parse(&text).map_err(|e| e.to_string())?
    } else {
        Vec::new()
    };
    let mut all = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let file = SourceFile::read(path, root).map_err(|e| format!("{}: {e}", path.display()))?;
        let scope = LintScope::for_path(&file.rel);
        if !(scope.l1 || scope.l2 || scope.l3 || scope.l4 || scope.l5) {
            continue;
        }
        scanned += 1;
        all.extend(lints::lint_file(&file, scope));
    }
    let (findings, suppressed, unused_entries) = allowlist::apply(all, &entries);
    Ok(CheckReport {
        findings,
        suppressed,
        unused_entries,
        files_scanned: scanned,
    })
}

/// Lints explicit files with *every* lint enabled (used by the
/// self-test fixtures and `check --paths`). No allowlist applies;
/// escape comments still do.
pub fn check_paths(root: &Path, paths: &[PathBuf]) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for path in paths {
        let file = SourceFile::read(path, root).map_err(|e| format!("{}: {e}", path.display()))?;
        findings.extend(lints::lint_file(&file, LintScope::all()));
    }
    Ok(findings)
}

/// Recursively collects `.rs` files, skipping `target/` and the
/// lint fixtures (which are deliberate violations).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
