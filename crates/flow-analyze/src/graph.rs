//! The cross-crate call graph over [`crate::symbols`].
//!
//! Call sites are recovered token-wise from cleaned function bodies:
//! `foo(..)`, `path::foo(..)`, and `.foo(..)` shapes (macros — `foo!`
//! — and tuple-struct constructors are excluded). Resolution is
//! deliberately an over-approximation biased toward soundness of
//! reachability answers:
//!
//! * plain calls resolve within the defining file, then to same-crate
//!   free functions, then through the file's `use` imports;
//! * `Qualifier::name(..)` resolves to methods of an `impl Qualifier`
//!   anywhere in the workspace, to free functions of the `flow_x`
//!   crate the qualifier names, to the aliased import, or to free
//!   functions in the same-crate module file `qualifier.rs`;
//! * `.name(..)` method calls resolve to *every* workspace method of
//!   that name (receiver types are not tracked), which over-links but
//!   never misses a real edge to workspace code.
//!
//! Unresolvable calls (std/vendored APIs) produce no edge; the
//! interprocedural lints treat workspace code as the analysis universe.

use crate::source::SourceFile;
use crate::symbols::{FnSym, SymbolTable};
use std::collections::BTreeMap;

/// How a call site names its target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(..)`.
    Plain,
    /// `Qual::foo(..)`; the qualifier is the last path segment before
    /// the called name (`Type`, `module`, `flow_mcmc`, `Self`, ...).
    Qualified(String),
    /// `.foo(..)`.
    Method,
}

/// One syntactic call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Called name.
    pub name: String,
    /// Shape of the call.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: usize,
}

/// One resolved edge of the call graph.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee function id.
    pub callee: usize,
    /// 1-based line of the call site in the caller.
    pub line: usize,
}

/// The workspace call graph: adjacency by function id.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing edges per function id, deduped, in call-site order.
    pub edges: Vec<Vec<Edge>>,
}

/// Rust keywords and control forms that look like `ident(` at token
/// level but are never calls.
const NON_CALLS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "unsafe", "where",
    "let", "else",
];

impl CallGraph {
    /// Builds the graph for every function in `table`; `files` must be
    /// the same slice the table was built from.
    pub fn build(table: &SymbolTable, files: &[SourceFile]) -> CallGraph {
        let by_rel: BTreeMap<&str, &SourceFile> =
            files.iter().map(|f| (f.rel.as_str(), f)).collect();
        let mut edges = Vec::with_capacity(table.fns.len());
        for f in &table.fns {
            let Some(file) = by_rel.get(f.rel.as_str()) else {
                edges.push(Vec::new());
                continue;
            };
            let mut out: Vec<Edge> = Vec::new();
            for site in call_sites(file, f.body) {
                for callee in resolve(table, f, &site) {
                    if callee != f.id && !out.iter().any(|e| e.callee == callee) {
                        out.push(Edge {
                            callee,
                            line: site.line,
                        });
                    }
                }
            }
            edges.push(out);
        }
        CallGraph { edges }
    }

    /// Breadth-first reachability from `roots`. Returns, per function
    /// id, the predecessor edge on a shortest discovery path
    /// (`(caller id, call line)`), with roots marked by self-edges.
    pub fn reach(&self, roots: &[usize]) -> Vec<Option<(usize, usize)>> {
        let mut pred: Vec<Option<(usize, usize)>> = vec![None; self.edges.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if r < pred.len() && pred[r].is_none() {
                pred[r] = Some((r, 0));
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for e in &self.edges[u] {
                if pred[e.callee].is_none() {
                    pred[e.callee] = Some((u, e.line));
                    queue.push_back(e.callee);
                }
            }
        }
        pred
    }

    /// Reconstructs the discovery chain root -> .. -> `target` as
    /// `(fn id, call line into the next hop)` pairs; the final pair's
    /// line is 0.
    pub fn chain(pred: &[Option<(usize, usize)>], target: usize) -> Vec<(usize, usize)> {
        let mut rev = Vec::new();
        let mut cur = target;
        let mut hops = 0;
        let mut into_line = 0usize;
        while let Some((p, line)) = pred.get(cur).copied().flatten() {
            rev.push((cur, into_line));
            if p == cur {
                break;
            }
            into_line = line;
            cur = p;
            hops += 1;
            if hops > pred.len() {
                break;
            }
        }
        rev.reverse();
        rev
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Extracts call sites from the cleaned lines of a body span
/// (`1-based inclusive`).
pub fn call_sites(file: &SourceFile, body: (usize, usize)) -> Vec<CallSite> {
    let mut out = Vec::new();
    let lo = body.0.saturating_sub(1);
    let hi = body.1.min(file.code.len());
    for (idx, code) in file.code.iter().enumerate().take(hi).skip(lo) {
        let bytes = code.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b != b'(' || i == 0 {
                continue;
            }
            // Walk back over the called identifier.
            let mut start = i;
            while start > 0 && is_ident_char(bytes[start - 1] as char) {
                start -= 1;
            }
            if start == i {
                continue;
            }
            let name = &code[start..i];
            if NON_CALLS.contains(&name) || name.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                continue;
            }
            let before = if start >= 1 { bytes[start - 1] } else { b' ' };
            // Macro calls never resolve to functions.
            if before == b'!' {
                continue;
            }
            let kind = if before == b'.' {
                CallKind::Method
            } else if start >= 2 && &bytes[start - 2..start] == b"::" {
                // Walk back over the qualifier segment.
                let q_end = start - 2;
                let mut q_start = q_end;
                while q_start > 0 && is_ident_char(bytes[q_start - 1] as char) {
                    q_start -= 1;
                }
                if q_start == q_end {
                    continue;
                }
                // Deeper prefixes (`a::b::c(`) resolve by the last
                // qualifier segment alone.
                CallKind::Qualified(code[q_start..q_end].to_owned())
            } else {
                // A plain call; uppercase-initial idents are tuple
                // constructors / variants, not functions.
                if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    continue;
                }
                CallKind::Plain
            };
            out.push(CallSite {
                name: name.to_owned(),
                kind,
                line: idx + 1,
            });
        }
    }
    out
}

/// Maps a `flow_x`-style path qualifier to the workspace crate name.
fn crate_from_qualifier(q: &str) -> String {
    q.replace('_', "-")
}

/// Resolves one call site to candidate callee ids.
fn resolve(table: &SymbolTable, caller: &FnSym, site: &CallSite) -> Vec<usize> {
    let mut out = Vec::new();
    match &site.kind {
        CallKind::Plain => {
            // Same file first.
            if let Some(fs) = table.file(&caller.rel) {
                for &id in &fs.fns {
                    if table.fns[id].name == site.name && table.fns[id].impl_type.is_none() {
                        out.push(id);
                    }
                }
                if out.is_empty() {
                    if let Some(path) = fs.imports.get(&site.name) {
                        out.extend(resolve_import(table, path, &site.name));
                    }
                }
            }
            // Same-crate free functions (other modules of the crate).
            if out.is_empty() {
                if let Some(ids) = table
                    .by_crate_free
                    .get(&(caller.krate.clone(), site.name.clone()))
                {
                    out.extend(ids.iter().copied());
                }
            }
        }
        CallKind::Qualified(q) => {
            let q = q.as_str();
            if q == "self" || q == "crate" || q == "super" {
                if let Some(ids) = table
                    .by_crate_free
                    .get(&(caller.krate.clone(), site.name.clone()))
                {
                    out.extend(ids.iter().copied());
                }
            } else if q == "Self" {
                if let Some(t) = &caller.impl_type {
                    if let Some(ids) = table.by_type_method.get(&(t.clone(), site.name.clone())) {
                        out.extend(ids.iter().copied());
                    }
                }
            } else {
                // `Type::method(..)`.
                if let Some(ids) = table.by_type_method.get(&(q.to_owned(), site.name.clone())) {
                    out.extend(ids.iter().copied());
                }
                // `flow_x::free_fn(..)`.
                if out.is_empty() {
                    let krate = crate_from_qualifier(q);
                    if let Some(ids) = table.by_crate_free.get(&(krate, site.name.clone())) {
                        out.extend(ids.iter().copied());
                    }
                }
                // Imported alias for a type or module.
                if out.is_empty() {
                    if let Some(fs) = table.file(&caller.rel) {
                        if let Some(path) = fs.imports.get(q) {
                            let crate_seg = path.split("::").next().unwrap_or("");
                            let krate = crate_from_qualifier(crate_seg);
                            if let Some(ids) = table.by_crate_free.get(&(krate, site.name.clone()))
                            {
                                out.extend(ids.iter().copied());
                            }
                        }
                    }
                }
                // `module_file::free_fn(..)` within the same crate.
                if out.is_empty() {
                    if let Some(ids) = table
                        .by_crate_free
                        .get(&(caller.krate.clone(), site.name.clone()))
                    {
                        let stem = format!("/{q}.rs");
                        let dir = format!("/{q}/");
                        out.extend(ids.iter().copied().filter(|&id| {
                            table.fns[id].rel.ends_with(&stem) || table.fns[id].rel.contains(&dir)
                        }));
                    }
                }
            }
        }
        CallKind::Method => {
            // Every workspace method of this name (no receiver types).
            if let Some(ids) = table.by_name.get(&site.name) {
                out.extend(
                    ids.iter()
                        .copied()
                        .filter(|&id| table.fns[id].impl_type.is_some()),
                );
            }
        }
    }
    out
}

/// Resolves an imported free function: the path's first segment names
/// the crate, the last must equal the called name.
fn resolve_import(table: &SymbolTable, path: &str, name: &str) -> Vec<usize> {
    let mut segs = path.split("::");
    let crate_seg = segs.next().unwrap_or("");
    if path.rsplit("::").next() != Some(name) {
        return Vec::new();
    }
    let krate = crate_from_qualifier(crate_seg);
    table
        .by_crate_free
        .get(&(krate, name.to_owned()))
        .cloned()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scan(rel: &str, text: &str) -> SourceFile {
        SourceFile::from_text(PathBuf::from(rel), rel.into(), text)
    }

    fn graph(files: &[SourceFile]) -> (SymbolTable, CallGraph) {
        let t = SymbolTable::build(files);
        let g = CallGraph::build(&t, files);
        (t, g)
    }

    fn id_of(t: &SymbolTable, name: &str) -> usize {
        t.by_name[name][0]
    }

    #[test]
    fn plain_calls_link_within_a_file() {
        let f = scan(
            "crates/a/src/lib.rs",
            "pub fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        );
        let (t, g) = graph(std::slice::from_ref(&f));
        let top = id_of(&t, "top");
        let leaf = id_of(&t, "leaf");
        let pred = g.reach(&[top]);
        assert!(pred[leaf].is_some(), "top -> mid -> leaf must be reachable");
        let chain = CallGraph::chain(&pred, leaf);
        let names: Vec<&str> = chain
            .iter()
            .map(|&(id, _)| t.fns[id].name.as_str())
            .collect();
        assert_eq!(names, ["top", "mid", "leaf"]);
    }

    #[test]
    fn cross_crate_calls_resolve_through_imports() {
        let a = scan(
            "crates/flow-serve/src/lib.rs",
            "use flow_mcmc::shared_flows;\npub fn serve() { shared_flows(); }\n",
        );
        let b = scan(
            "crates/flow-mcmc/src/shared.rs",
            "pub fn shared_flows() { danger(); }\nfn danger() {}\n",
        );
        let (t, g) = graph(&[a, b]);
        let pred = g.reach(&[id_of(&t, "serve")]);
        assert!(pred[id_of(&t, "danger")].is_some());
    }

    #[test]
    fn qualified_calls_resolve_type_methods_and_crate_paths() {
        let a = scan(
            "crates/a/src/lib.rs",
            "pub fn go() { Tree::new(); flow_b::helper(); util::tidy(); }\n",
        );
        let b = scan(
            "crates/a/src/tree.rs",
            "impl Tree {\n    pub fn new() {}\n}\n",
        );
        let c = scan("crates/flow-b/src/lib.rs", "pub fn helper() {}\n");
        let d = scan("crates/a/src/util.rs", "pub fn tidy() {}\n");
        let (t, g) = graph(&[a, b, c, d]);
        let pred = g.reach(&[id_of(&t, "go")]);
        assert!(pred[id_of(&t, "new")].is_some());
        assert!(pred[id_of(&t, "helper")].is_some());
        assert!(pred[id_of(&t, "tidy")].is_some());
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let a = scan("crates/a/src/lib.rs", "pub fn go(s: &S) { s.run(); }\n");
        let b = scan(
            "crates/b/src/lib.rs",
            "impl Sampler {\n    pub fn run(&self) {}\n}\n",
        );
        let (t, g) = graph(&[a, b]);
        let pred = g.reach(&[id_of(&t, "go")]);
        assert!(pred[id_of(&t, "run")].is_some());
    }

    #[test]
    fn macros_constructors_and_keywords_are_not_calls() {
        let f = scan(
            "crates/a/src/lib.rs",
            "pub fn go() { println!(\"x\"); Some(1); if (a) {} vec![0]; }\nfn println() {}\n",
        );
        let (t, g) = graph(std::slice::from_ref(&f));
        let go = id_of(&t, "go");
        assert!(
            g.edges[go].is_empty(),
            "no call edges expected, got {:?}",
            g.edges[go]
        );
    }
}
