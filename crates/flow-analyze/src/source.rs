//! Comment/string-aware source scanning.
//!
//! The lint pass is deliberately dependency-free (no `syn`; the vendor
//! directory is the only dependency source), so it works on a *cleaned*
//! view of each file: comments and the contents of string/char literals
//! are blanked out, line structure is preserved, and `#[cfg(test)]`
//! item spans are marked so lints can restrict themselves to non-test
//! code. This is a token-level approximation, not a parse — precise
//! enough for the lint vocabulary (`L1`–`L4`), cheap enough to run on
//! every commit.

use std::path::{Path, PathBuf};

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Raw lines exactly as on disk.
    pub raw: Vec<String>,
    /// Lines with comments and literal contents blanked by spaces.
    pub code: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Lint ids allowed on each line via `// flow-analyze: allow(..)`
    /// escape comments (on the line itself or on comment-only lines
    /// immediately above it).
    pub allows: Vec<Vec<String>>,
}

impl SourceFile {
    /// Reads and scans one file. `root` anchors the relative path used
    /// in findings and allowlist matching.
    pub fn read(path: &Path, root: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        Ok(Self::from_text(path.to_path_buf(), rel, &text))
    }

    /// Scans source text (separated from [`Self::read`] for tests).
    pub fn from_text(path: PathBuf, rel: String, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let cleaned = clean(text);
        let code: Vec<String> = cleaned.lines().map(str::to_owned).collect();
        debug_assert_eq!(raw.len(), code.len(), "cleaning must preserve lines");
        let in_test = mark_test_spans(&cleaned, raw.len());
        let allows = collect_allows(&raw, &code);
        SourceFile {
            path,
            rel,
            raw,
            code,
            in_test,
            allows,
        }
    }

    /// True if `lint` is escaped on 1-based line `line`.
    pub fn is_allowed(&self, line: usize, lint: &str) -> bool {
        self.allows
            .get(line.saturating_sub(1))
            .is_some_and(|ids| ids.iter().any(|id| id == lint))
    }

    /// The raw text of 1-based line `line`, trimmed, for snippets.
    pub fn snippet(&self, line: usize) -> String {
        self.raw
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }
}

/// Blanks comments and the contents of string/char literals with
/// spaces, preserving newlines and column positions. Delimiters of
/// string literals are kept (as `"`), so token boundaries survive.
fn clean(text: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let bytes: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." or r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a char literal closes
                    // within a few characters ('x', '\n', '\u{..}');
                    // a lifetime ('a, 'static) never closes with '.
                    let is_char = if next == Some('\\') {
                        true
                    } else {
                        bytes.get(i + 2) == Some(&'\'')
                    };
                    if is_char {
                        state = State::Char;
                    }
                    out.push('\'');
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    i += 2;
                    continue;
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if let Some(n) = next {
                        // A line-continuation escape still ends the
                        // physical line; keep the newline.
                        out.push(if n == '\n' { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    state = State::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    // Close only when followed by the right number of #.
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        for _ in 0..=hashes as usize {
                            out.push(' ');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    if let Some(n) = next {
                        out.push(if n == '\n' { '\n' } else { ' ' });
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    state = State::Code;
                    out.push('\'');
                }
                '\n' => {
                    // A misdetected char literal must not eat lines.
                    state = State::Code;
                    out.push('\n');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Marks every line covered by a `#[cfg(test)]` (or `#[cfg(all(test,
/// ..))]` / `#[cfg(any(test, ..))]`) item: from the attribute to the
/// close of the brace block that follows it.
fn mark_test_spans(cleaned: &str, line_count: usize) -> Vec<bool> {
    let mut in_test = vec![false; line_count];
    let chars: Vec<char> = cleaned.chars().collect();
    // Precompute char index -> line number (0-based).
    let mut line_of = Vec::with_capacity(chars.len());
    let mut ln = 0usize;
    for &c in &chars {
        line_of.push(ln);
        if c == '\n' {
            ln += 1;
        }
    }
    for marker in ["cfg(test)", "cfg(all(test", "cfg(any(test"] {
        let mut from = 0;
        while let Some(off) = find_from(cleaned, marker, from) {
            from = off + marker.len();
            // Walk forward to the first '{' and match braces.
            let mut i = off;
            while i < chars.len() && chars[i] != '{' {
                i += 1;
            }
            if i == chars.len() {
                continue;
            }
            let start_line = line_of[off];
            let mut depth = 0i64;
            while i < chars.len() {
                match chars[i] {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            let end_line = if i < chars.len() {
                line_of[i]
            } else {
                line_count.saturating_sub(1)
            };
            for flag in in_test.iter_mut().take(end_line + 1).skip(start_line) {
                *flag = true;
            }
        }
    }
    in_test
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|i| i + from)
}

/// Extracts `// flow-analyze: allow(L1, L2)`-style escape comments and
/// attaches them to the line they govern: the comment's own line if it
/// carries code, otherwise the next line that does.
fn collect_allows(raw: &[String], code: &[String]) -> Vec<Vec<String>> {
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); raw.len()];
    let mut pending: Vec<String> = Vec::new();
    for (i, raw_line) in raw.iter().enumerate() {
        let ids = parse_allow_ids(raw_line);
        let has_code = !code[i].trim().is_empty();
        if has_code {
            let mut line_ids = std::mem::take(&mut pending);
            line_ids.extend(ids);
            allows[i] = line_ids;
        } else {
            pending.extend(ids);
        }
    }
    allows
}

/// Parses the lint ids out of every `flow-analyze: allow(...)` marker
/// on a raw line.
fn parse_allow_ids(raw_line: &str) -> Vec<String> {
    const MARKER: &str = "flow-analyze: allow(";
    let mut ids = Vec::new();
    let mut from = 0;
    while let Some(off) = find_from(raw_line, MARKER, from) {
        let rest = &raw_line[off + MARKER.len()..];
        let Some(close) = rest.find(')') else {
            break;
        };
        for id in rest[..close].split(',') {
            // Accept "L1" and "L1: justification".
            let id = id.split(':').next().unwrap_or("").trim();
            if !id.is_empty() {
                ids.push(id.to_owned());
            }
        }
        from = off + MARKER.len() + close;
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> SourceFile {
        SourceFile::from_text(PathBuf::from("x.rs"), "x.rs".into(), text)
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = scan("let x = \"panic!\"; // unwrap()\nlet y = 'a';\n");
        assert!(!f.code[0].contains("panic"));
        assert!(!f.code[0].contains("unwrap"));
        assert!(f.code[0].contains("let x"));
        assert!(f.code[1].contains("let y"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let f = scan("let s = r#\"a \" unwrap() \"#; s.len();\nlet t = \"\\\"unwrap()\\\"\";\n");
        assert!(!f.code[0].contains("unwrap"));
        assert!(f.code[0].contains("s.len()"));
        assert!(!f.code[1].contains("unwrap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = '}';\nlet d = 1 + 1;\n");
        assert!(f.code[0].contains("fn f"));
        assert!(f.code[0].contains("{ x }"));
        // The '}' literal must not leak a brace into the cleaned code.
        assert!(!f.code[1].contains('}'));
        assert!(f.code[2].contains("1 + 1"));
    }

    #[test]
    fn block_comments_nest() {
        let f = scan("/* a /* b */ still comment */ let x = 1;\n");
        assert!(!f.code[0].contains('a'));
        assert!(f.code[0].contains("let x = 1;"));
    }

    #[test]
    fn test_spans_are_marked() {
        let text = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn tail() {}\n";
        let f = scan(text);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1]);
        assert!(f.in_test[2]);
        assert!(f.in_test[3]);
        assert!(f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn raw_strings_swallow_comment_markers_and_panic_tokens() {
        // A `//` inside a raw string is text, not a comment — the code
        // after the string must survive cleaning, the contents must not.
        let f =
            scan("let url = r#\"https://example.com // unwrap( \"#; follow(url);\nlet next = 1;\n");
        assert!(!f.code[0].contains("unwrap"), "{}", f.code[0]);
        assert!(!f.code[0].contains("//"), "{}", f.code[0]);
        assert!(f.code[0].contains("follow(url);"), "{}", f.code[0]);
        assert!(f.code[1].contains("let next = 1;"));
        // Multi-hash raw strings don't close on a single `"#`.
        let g = scan("let s = r##\"inner \"# unwrap() still\"##; tail();\n");
        assert!(!g.code[0].contains("unwrap"), "{}", g.code[0]);
        assert!(g.code[0].contains("tail();"), "{}", g.code[0]);
    }

    #[test]
    fn nested_block_comments_span_lines_and_hide_panics() {
        let f = scan(
            "/* outer /* inner unwrap() */\nstill comment panic!()\n*/ let alive = 1;\nlet after = 2;\n",
        );
        assert!(!f.code[0].contains("unwrap"));
        assert!(!f.code[1].contains("panic"));
        assert!(f.code[2].contains("let alive = 1;"), "{}", f.code[2]);
        assert!(f.code[3].contains("let after = 2;"));
    }

    #[test]
    fn cfg_test_span_reaching_file_end_is_fully_marked() {
        // The test module's closing brace IS the last line: the span
        // must cover through EOF without running past the buffer.
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}";
        let f = scan(text);
        assert!(!f.in_test[0]);
        assert!((1..5).all(|i| f.in_test[i]), "{:?}", f.in_test);

        // Unclosed at EOF (mid-edit file): everything from the
        // attribute down is test code, and cleaning must not panic.
        let g = scan("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n");
        assert!(!g.in_test[0]);
        assert!((1..4).all(|i| g.in_test[i]), "{:?}", g.in_test);
    }

    #[test]
    fn allow_comments_attach_to_code_lines() {
        let text = "// flow-analyze: allow(L1: wrapper)\nlet a = x.unwrap();\nlet b = y.unwrap(); // flow-analyze: allow(L1, L3)\nlet c = z.unwrap();\n";
        let f = scan(text);
        assert!(f.is_allowed(2, "L1"));
        assert!(f.is_allowed(3, "L1"));
        assert!(f.is_allowed(3, "L3"));
        assert!(!f.is_allowed(4, "L1"));
    }
}
