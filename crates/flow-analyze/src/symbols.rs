//! Workspace symbol extraction: `fn` / `impl` / `use` items.
//!
//! Built on the same cleaned view of source that the line lints use
//! ([`crate::source`]): comments and literal contents are blanked, so a
//! brace-depth walk over tokens is enough to recover every function
//! item, its enclosing `impl` target, its body span, and the file's
//! `use` imports. This is deliberately a token-level approximation —
//! no `syn`, no new dependencies — precise enough for the
//! interprocedural lints L7–L9 (see [`crate::graph`] and
//! [`crate::interlints`]), which over-approximate call targets and
//! resolve escapes through the same justification machinery as the
//! line lints.

use crate::source::SourceFile;
use std::collections::BTreeMap;

/// One function item found in the workspace.
#[derive(Clone, Debug)]
pub struct FnSym {
    /// Index into [`SymbolTable::fns`].
    pub id: usize,
    /// Bare function name (`step`, `try_save`, ...).
    pub name: String,
    /// Enclosing `impl` target type, generics stripped (`ServeCache`),
    /// or `None` for free functions.
    pub impl_type: Option<String>,
    /// Crate directory name (`flow-mcmc`).
    pub krate: String,
    /// Workspace-relative path of the defining file.
    pub rel: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based inclusive body span (equal to `line..=line` for
    /// body-less trait declarations).
    pub body: (usize, usize),
    /// Declared `pub` (any visibility modifier counts).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` span.
    pub in_test: bool,
    /// Signature returns a `Result`-shaped type (`Result`,
    /// `FlowResult`, `io::Result`, ...).
    pub returns_result: bool,
    /// Signature returns `bool` (the L9 lint treats relaxed atomic
    /// loads in boolean-returning functions as control-flow gates).
    pub returns_bool: bool,
}

impl FnSym {
    /// `Type::name` or `name`, for display.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Per-file symbol info: which functions it defines and what it
/// imports.
#[derive(Clone, Debug, Default)]
pub struct FileSymbols {
    /// Workspace-relative path.
    pub rel: String,
    /// Crate directory name.
    pub krate: String,
    /// Ids of functions defined in this file.
    pub fns: Vec<usize>,
    /// `use` imports: local alias -> full path (`Icm` ->
    /// `flow_icm::Icm`).
    pub imports: BTreeMap<String, String>,
}

/// All function symbols of a scanned file set, with lookup indexes.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function, in file order then line order.
    pub fns: Vec<FnSym>,
    /// Per-file symbol info, parallel to the scanned file list.
    pub files: Vec<FileSymbols>,
    /// name -> fn ids (free functions and methods alike).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// (impl type, method name) -> fn ids.
    pub by_type_method: BTreeMap<(String, String), Vec<usize>>,
    /// (crate, name) -> ids of free functions in that crate.
    pub by_crate_free: BTreeMap<(String, String), Vec<usize>>,
}

impl SymbolTable {
    /// Builds the table over a set of scanned files (deterministic:
    /// callers pass files in sorted order).
    pub fn build(files: &[SourceFile]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for file in files {
            let krate = crate_of(&file.rel);
            let mut fs = FileSymbols {
                rel: file.rel.clone(),
                krate: krate.clone(),
                ..Default::default()
            };
            scan_file(file, &krate, &mut table, &mut fs);
            table.files.push(fs);
        }
        for f in &table.fns {
            table.by_name.entry(f.name.clone()).or_default().push(f.id);
            match &f.impl_type {
                Some(t) => table
                    .by_type_method
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(f.id),
                None => table
                    .by_crate_free
                    .entry((f.krate.clone(), f.name.clone()))
                    .or_default()
                    .push(f.id),
            }
        }
        table
    }

    /// The file entry for a workspace-relative path, if scanned.
    pub fn file(&self, rel: &str) -> Option<&FileSymbols> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Crate directory name for a workspace-relative path
/// (`crates/flow-mcmc/src/sampler.rs` -> `flow-mcmc`); the path itself
/// for files outside `crates/`.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_owned();
        }
    }
    rel.to_owned()
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// A flattened character stream over the cleaned file, remembering the
/// 0-based line of every char.
struct Stream {
    chars: Vec<char>,
    line_of: Vec<usize>,
}

impl Stream {
    fn new(file: &SourceFile) -> Stream {
        let mut chars = Vec::new();
        let mut line_of = Vec::new();
        for (ln, line) in file.code.iter().enumerate() {
            for c in line.chars() {
                chars.push(c);
                line_of.push(ln);
            }
            chars.push('\n');
            line_of.push(ln);
        }
        Stream { chars, line_of }
    }

    fn ident_at(&self, mut i: usize) -> (String, usize) {
        let start = i;
        while i < self.chars.len() && is_ident_char(self.chars[i]) {
            i += 1;
        }
        (self.chars[start..i].iter().collect(), i)
    }

    fn skip_ws(&self, mut i: usize) -> usize {
        while i < self.chars.len() && self.chars[i].is_whitespace() {
            i += 1;
        }
        i
    }
}

/// One entry of the brace-context stack.
enum Ctx {
    /// An `impl` block for the named target type.
    Impl(String),
    /// Any other brace (fn body, mod, match, ...).
    Other,
}

/// Walks one file's cleaned token stream, collecting `fn` items into
/// `table` and imports into `fs`.
fn scan_file(file: &SourceFile, krate: &str, table: &mut SymbolTable, fs: &mut FileSymbols) {
    let s = Stream::new(file);
    let mut stack: Vec<Ctx> = Vec::new();
    // Set when an `impl` header was parsed and its `{` is pending.
    let mut pending_impl: Option<String> = None;
    let mut i = 0;
    while i < s.chars.len() {
        let c = s.chars[i];
        if c == '{' {
            stack.push(match pending_impl.take() {
                Some(t) => Ctx::Impl(t),
                None => Ctx::Other,
            });
            i += 1;
            continue;
        }
        if c == '}' {
            stack.pop();
            i += 1;
            continue;
        }
        if !is_ident_char(c) || (i > 0 && is_ident_char(s.chars[i - 1])) {
            i += 1;
            continue;
        }
        let (word, after) = s.ident_at(i);
        match word.as_str() {
            "impl" => {
                // Header text runs to the block's `{` (or a `;`).
                let mut j = after;
                let mut header = String::new();
                let mut depth = 0i32;
                while j < s.chars.len() {
                    let h = s.chars[j];
                    match h {
                        '<' | '(' => depth += 1,
                        '>' | ')' => depth -= 1,
                        '{' | ';' if depth <= 0 => break,
                        _ => {}
                    }
                    header.push(h);
                    j += 1;
                }
                pending_impl = Some(impl_target(&header));
                i = j;
            }
            "fn" => {
                let name_start = s.skip_ws(after);
                let (name, after_name) = s.ident_at(name_start);
                if name.is_empty() {
                    i = after;
                    continue;
                }
                // Scan the signature to the body `{` or a `;`,
                // tracking angle/paren depth so `where` clauses and
                // nested generics don't end it early.
                let mut j = after_name;
                let mut sig = String::new();
                let mut depth = 0i32;
                while j < s.chars.len() {
                    let h = s.chars[j];
                    match h {
                        '<' | '(' | '[' => depth += 1,
                        // `->` must not count as closing an angle.
                        '>' if j > 0 && s.chars[j - 1] == '-' => {}
                        '>' | ')' | ']' => depth -= 1,
                        '{' | ';' if depth <= 0 => break,
                        _ => {}
                    }
                    sig.push(h);
                    j += 1;
                }
                let fn_line = s.line_of[i];
                let ret = sig.split("->").nth(1);
                let returns_result =
                    ret.is_some_and(|r| has_token(r, "Result") || has_token(r, "FlowResult"));
                let returns_bool = ret.is_some_and(|r| has_token(r, "bool"));
                let is_pub = item_prefix_has_pub(&s, i);
                let body = if s.chars.get(j) == Some(&'{') {
                    // Brace-match the body.
                    let start_line = s.line_of[j];
                    let mut depth = 0i64;
                    let mut k = j;
                    while k < s.chars.len() {
                        match s.chars[k] {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    let end_line = if k < s.chars.len() {
                        s.line_of[k]
                    } else {
                        file.code.len().saturating_sub(1)
                    };
                    (start_line + 1, end_line + 1)
                } else {
                    (fn_line + 1, fn_line + 1)
                };
                let impl_type = stack.iter().rev().find_map(|c| match c {
                    Ctx::Impl(t) => Some(t.clone()),
                    Ctx::Other => None,
                });
                let id = table.fns.len();
                table.fns.push(FnSym {
                    id,
                    name,
                    impl_type,
                    krate: krate.to_owned(),
                    rel: file.rel.clone(),
                    line: fn_line + 1,
                    body,
                    is_pub,
                    in_test: file.in_test.get(fn_line).copied().unwrap_or(false),
                    returns_result,
                    returns_bool,
                });
                fs.fns.push(id);
                // Resume just past the signature; the body braces are
                // handled by the main walk so nested items still parse.
                i = j;
            }
            "use" => {
                let mut j = after;
                let mut path = String::new();
                while j < s.chars.len() && s.chars[j] != ';' {
                    path.push(s.chars[j]);
                    j += 1;
                }
                collect_imports(&path, &mut fs.imports);
                i = j;
            }
            _ => i = after,
        }
    }
}

/// True when `token` occurs at a token boundary in `text`.
fn has_token(text: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(off) = text.get(from..).and_then(|s| s.find(token)) {
        let pos = from + off;
        let before_ok = pos == 0 || !is_ident_char(text[..pos].chars().next_back().unwrap_or(' '));
        let after_ok = !text[pos + token.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        from = pos + token.len();
    }
    false
}

/// Whether the item introduced at char `at` carries a `pub` modifier:
/// looks back over the text since the previous `{`, `}`, or `;`.
fn item_prefix_has_pub(s: &Stream, at: usize) -> bool {
    let mut start = at;
    while start > 0 {
        let c = s.chars[start - 1];
        if c == '{' || c == '}' || c == ';' {
            break;
        }
        start -= 1;
    }
    let prefix: String = s.chars[start..at].iter().collect();
    has_token(&prefix, "pub")
}

/// The target type of an `impl` header: `impl<T> Foo<T>` -> `Foo`,
/// `impl Display for Bar` -> `Bar`, `impl a::b::Baz` -> `Baz`.
fn impl_target(header: &str) -> String {
    let mut rest = header.trim();
    // Drop a leading generic parameter list.
    if rest.starts_with('<') {
        let mut depth = 0i32;
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        rest = &rest[i + 1..];
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    if let Some(pos) = find_token(rest, "for") {
        rest = &rest[pos + 3..];
    }
    let rest = rest.trim().trim_start_matches('&');
    // Strip generics and a `where` clause, then take the last path
    // segment.
    let mut name = String::new();
    for c in rest.chars() {
        if c == '<' || c == '(' || c.is_whitespace() {
            break;
        }
        name.push(c);
    }
    name.rsplit("::").next().unwrap_or("").trim().to_owned()
}

/// Byte offset of `token` at a token boundary, if present.
fn find_token(text: &str, token: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(off) = text.get(from..).and_then(|s| s.find(token)) {
        let pos = from + off;
        let before_ok = pos == 0 || !is_ident_char(text[..pos].chars().next_back().unwrap_or(' '));
        let after_ok = !text[pos + token.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + token.len();
    }
    None
}

/// Expands one `use` path (without the `use` keyword or trailing `;`)
/// into alias -> full-path entries. Handles `as` renames and one level
/// of `{...}` groups; glob imports are ignored.
fn collect_imports(path: &str, out: &mut BTreeMap<String, String>) {
    let path = path.trim();
    if let Some(open) = path.find('{') {
        let prefix = path[..open].trim().trim_end_matches("::");
        let inner = path[open + 1..].trim_end().trim_end_matches('}');
        let mut depth = 0i32;
        let mut item = String::new();
        for c in inner.chars() {
            match c {
                '{' => {
                    depth += 1;
                    item.push(c);
                }
                '}' => {
                    depth -= 1;
                    item.push(c);
                }
                ',' if depth == 0 => {
                    collect_one(prefix, item.trim(), out);
                    item.clear();
                }
                _ => item.push(c),
            }
        }
        collect_one(prefix, item.trim(), out);
    } else {
        collect_one("", path, out);
    }
}

fn collect_one(prefix: &str, item: &str, out: &mut BTreeMap<String, String>) {
    if item.is_empty() || item.contains('*') {
        return;
    }
    // Nested groups inside a group: recurse with the extended prefix.
    if item.contains('{') {
        let joined = if prefix.is_empty() {
            item.to_owned()
        } else {
            format!("{prefix}::{item}")
        };
        collect_imports(&joined, out);
        return;
    }
    let (path_part, alias) = match item.split_once(" as ") {
        Some((p, a)) => (p.trim(), a.trim().to_owned()),
        None => {
            let p = item.trim();
            let last = p.rsplit("::").next().unwrap_or(p).trim().to_owned();
            (p, last)
        }
    };
    if alias.is_empty() || alias == "self" {
        return;
    }
    let full = if prefix.is_empty() {
        path_part.to_owned()
    } else {
        format!("{prefix}::{path_part}")
    };
    out.insert(alias, full);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn table(text: &str) -> SymbolTable {
        let f = SourceFile::from_text(
            PathBuf::from("crates/flow-mcmc/src/x.rs"),
            "crates/flow-mcmc/src/x.rs".into(),
            text,
        );
        SymbolTable::build(std::slice::from_ref(&f))
    }

    #[test]
    fn free_fns_and_methods_are_indexed() {
        let t = table(
            "pub fn entry() {}\n\
             fn helper(x: u32) -> Result<u32, E> { Ok(x) }\n\
             impl Sampler {\n    pub fn step(&mut self) { self.go() }\n}\n\
             impl Display for Sampler {\n    fn fmt(&self) {}\n}\n",
        );
        assert_eq!(t.fns.len(), 4);
        assert!(t.fns[0].is_pub && t.fns[0].impl_type.is_none());
        assert!(t.fns[1].returns_result && !t.fns[1].is_pub);
        let step = &t.fns[t.by_type_method[&("Sampler".into(), "step".into())][0]];
        assert_eq!(step.qualified(), "Sampler::step");
        let fmt = &t.fns[t.by_type_method[&("Sampler".into(), "fmt".into())][0]];
        assert_eq!(fmt.impl_type.as_deref(), Some("Sampler"));
        assert_eq!(
            t.by_crate_free[&("flow-mcmc".into(), "entry".into())].len(),
            1
        );
    }

    #[test]
    fn body_spans_cover_the_braces() {
        let t = table("fn a() {\n    one();\n    two();\n}\nfn b() {}\n");
        assert_eq!(t.fns[0].body, (1, 4));
        assert_eq!(t.fns[1].body, (5, 5));
    }

    #[test]
    fn test_fns_are_marked() {
        let t = table("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        assert!(!t.fns[0].in_test);
        assert!(t.fns[1].in_test);
    }

    #[test]
    fn impl_targets_strip_generics_and_trait_prefix() {
        assert_eq!(impl_target("<T: Clone> Tree<T>"), "Tree");
        assert_eq!(impl_target(" Display for Bar"), "Bar");
        assert_eq!(impl_target(" a::b::Baz"), "Baz");
        assert_eq!(impl_target(" From<Error> for FlowError"), "FlowError");
    }

    #[test]
    fn imports_expand_groups_and_renames() {
        let t = table(
            "use flow_icm::Icm;\n\
             use flow_mcmc::{McmcConfig, sampler::step_once as step1};\n\
             use std::collections::BTreeMap;\n",
        );
        let im = &t.files[0].imports;
        assert_eq!(im["Icm"], "flow_icm::Icm");
        assert_eq!(im["McmcConfig"], "flow_mcmc::McmcConfig");
        assert_eq!(im["step1"], "flow_mcmc::sampler::step_once");
        assert_eq!(im["BTreeMap"], "std::collections::BTreeMap");
    }

    #[test]
    fn result_detection_reads_the_return_type_only() {
        let t = table(
            "fn plain(r: Result<u8, E>) {}\n\
             fn gives() -> FlowResult<()> { Ok(()) }\n\
             fn io_like() -> std::io::Result<u8> { Ok(0) }\n",
        );
        assert!(!t.fns[0].returns_result);
        assert!(t.fns[1].returns_result);
        assert!(t.fns[2].returns_result);
    }
}
