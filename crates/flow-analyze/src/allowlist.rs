//! The allowlist file: per-file, per-lint suppressions with mandatory
//! justifications, capped at a fixed budget so the list stays a short
//! ledger of debts rather than a dumping ground.
//!
//! Format (one entry per line, `#` comments):
//!
//! ```text
//! L1 crates/flow-graph/src/generate.rs -- builders insert freshly checked unique pairs
//! ```
//!
//! An entry suppresses findings of its lint in every file whose
//! workspace-relative path starts with the given prefix. Unused entries
//! are reported so the ledger shrinks as debts are paid.

use crate::lints::Finding;

/// Hard cap on entries: past this the allowlist stops being a ledger.
pub const MAX_ENTRIES: usize = 30;

/// One parsed allowlist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Lint id ("L1".."L9").
    pub lint: String,
    /// Workspace-relative path prefix.
    pub path_prefix: String,
    /// Why this suppression is sound.
    pub justification: String,
    /// 1-based line in the allowlist file (for diagnostics).
    pub line: usize,
}

/// Parse failure (malformed line or budget overflow).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowlistError(pub String);

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allowlist error: {}", self.0)
    }
}

impl std::error::Error for AllowlistError {}

/// Parses allowlist text.
pub fn parse(text: &str) -> Result<Vec<Entry>, AllowlistError> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, justification) = line.split_once("--").ok_or_else(|| {
            AllowlistError(format!(
                "line {}: missing `-- justification` (every entry must say why)",
                i + 1
            ))
        })?;
        let mut parts = head.split_whitespace();
        let lint = parts.next().unwrap_or_default().to_owned();
        let path_prefix = parts.next().unwrap_or_default().to_owned();
        if !matches!(
            lint.as_str(),
            "L1" | "L2" | "L3" | "L4" | "L5" | "L6" | "L7" | "L8" | "L9"
        ) {
            return Err(AllowlistError(format!(
                "line {}: unknown lint id {lint:?} (expected L1..L9)",
                i + 1
            )));
        }
        if path_prefix.is_empty() || parts.next().is_some() {
            return Err(AllowlistError(format!(
                "line {}: expected `<lint> <path-prefix> -- <justification>`",
                i + 1
            )));
        }
        let justification = justification.trim().to_owned();
        if justification.is_empty() {
            return Err(AllowlistError(format!(
                "line {}: empty justification",
                i + 1
            )));
        }
        entries.push(Entry {
            lint,
            path_prefix,
            justification,
            line: i + 1,
        });
    }
    if entries.len() > MAX_ENTRIES {
        return Err(AllowlistError(format!(
            "{} entries exceed the budget of {MAX_ENTRIES}; pay down existing debts before adding more",
            entries.len()
        )));
    }
    Ok(entries)
}

/// Splits findings into (kept, suppressed) and reports which entries
/// never matched anything.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[Entry],
) -> (Vec<Finding>, Vec<Finding>, Vec<Entry>) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        let hit = entries
            .iter()
            .position(|e| e.lint == f.lint && f.rel.starts_with(&e.path_prefix));
        match hit {
            Some(k) => {
                used[k] = true;
                suppressed.push(f);
            }
            None => kept.push(f),
        }
    }
    let unused = entries
        .iter()
        .zip(&used)
        .filter(|&(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, suppressed, unused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Finding;

    fn finding(lint: &'static str, rel: &str) -> Finding {
        Finding {
            lint,
            rel: rel.into(),
            line: 1,
            message: String::new(),
            snippet: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_comments() {
        let text = "# header\nL1 crates/a/src/x.rs -- documented panicking wrapper\n\nL2 crates/b/ -- wall-clock budget enforcement\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].lint, "L1");
        assert_eq!(entries[1].path_prefix, "crates/b/");
    }

    #[test]
    fn rejects_missing_justification_and_bad_lints() {
        assert!(parse("L1 crates/a/src/x.rs\n").is_err());
        assert!(parse("L10 crates/a/src/x.rs -- hm\n").is_err());
        assert!(parse("L0 crates/a/src/x.rs -- hm\n").is_err());
        assert!(parse("L9 crates/a/src/x.rs -- fine\n").is_ok());
        assert!(parse("L1 crates/a.rs extra -- hm\n").is_err());
        assert!(parse("L1 crates/a.rs -- \n").is_err());
    }

    #[test]
    fn enforces_budget() {
        let mut text = String::new();
        for i in 0..=MAX_ENTRIES {
            text.push_str(&format!("L1 crates/f{i}.rs -- reason\n"));
        }
        let err = parse(&text).unwrap_err();
        assert!(err.0.contains("budget"), "{err}");
    }

    #[test]
    fn apply_suppresses_by_prefix_and_reports_unused() {
        let entries = parse("L1 crates/a/ -- reason\nL3 crates/never/ -- reason\n").unwrap();
        let (kept, suppressed, unused) = apply(
            vec![
                finding("L1", "crates/a/src/x.rs"),
                finding("L1", "crates/b/src/y.rs"),
            ],
            &entries,
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rel, "crates/b/src/y.rs");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].lint, "L3");
    }
}
