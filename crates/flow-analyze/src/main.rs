//! CLI driver: `cargo run -p flow-analyze -- <check|replay> [..]`.
//!
//! Exit codes follow the `repro serve` contract:
//!   0 — clean (no findings, ratchet holds)
//!   1 — contract violation (lint findings, stale allowlist entries,
//!       baseline ratchet failure, replay divergence) or an
//!       infrastructure error while running the analysis
//!   2 — usage error (bad flags, unknown subcommand, no subcommand)

use flow_analyze::replay::{run_replay, ReplayConfig};
use flow_analyze::{baseline, check_paths, check_workspace, emit, find_workspace_root};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
flow-analyze — workspace static analysis + determinism audit

USAGE:
    flow-analyze check [--root DIR] [--verbose] [--format text|json]
                       [--baseline FILE] [--write-baseline FILE]
                       [--paths FILE..]
    flow-analyze replay [--seed N] [--chains N] [--samples N]
                        [--nodes N] [--edges N]

check   runs the line lints L1-L6 + L10 and the interprocedural lints
        L7-L9 (panic reachability, error-drop taint, concurrency
        audit) over the core crates, honouring
        crates/flow-analyze/allowlist.txt and
        `// flow-analyze: allow(Lx: why)` escape comments.
        Stale allowlist entries fail the run.
        --format json emits a deterministic report on stdout.
        --baseline diffs suppression counts against FILE (defaults
        to crates/flow-analyze/analyze-baseline.json when present);
        counts may only move down. --write-baseline regenerates FILE
        from the current counts instead of diffing.
        With --paths, lints exactly the given files with every lint
        enabled and no allowlist or baseline (self-test mode).
replay  runs the parallel multi-chain estimator twice with one
        seed and diffs the trajectories step-by-step; any
        divergence is a determinism bug.

EXIT CODES:
    0  clean    1  findings / ratchet / infra error    2  usage
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        None => usage_error("a subcommand is required"),
        Some(other) => usage_error(&format!("unknown subcommand {other:?}")),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut format = Format::Text;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--verbose" | "-v" => verbose = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => {
                    return usage_error(&format!("--format must be text or json, got {other:?}"))
                }
                None => return usage_error("--format needs a value"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--write-baseline" => match it.next() {
                Some(v) => write_baseline = Some(PathBuf::from(v)),
                None => return usage_error("--write-baseline needs a value"),
            },
            "--paths" => {
                paths.extend(it.by_ref().map(PathBuf::from));
            }
            other => return usage_error(&format!("unknown check flag {other:?}")),
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage_error("could not locate the workspace root; pass --root"),
    };

    if !paths.is_empty() {
        if baseline_path.is_some() || write_baseline.is_some() {
            return usage_error("--paths mode takes no baseline (it lints explicit files)");
        }
        return match check_paths(&root, &paths) {
            Ok(findings) => {
                for f in &findings {
                    println!("{f}");
                }
                println!(
                    "flow-analyze check (paths mode): {} finding(s) in {} file(s)",
                    findings.len(),
                    paths.len()
                );
                exit_findings(findings.len())
            }
            Err(e) => infra_error(&e),
        };
    }

    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => return infra_error(&e),
    };
    let counts = report.suppression_counts();

    // Ratchet: regenerate or diff. The default committed baseline is
    // enforced whenever it exists.
    let mut ratchet_failures = Vec::new();
    if let Some(path) = &write_baseline {
        let text = emit::baseline_json(&counts);
        if let Err(e) = std::fs::write(path, text) {
            return infra_error(&format!("writing {}: {e}", path.display()));
        }
        eprintln!("flow-analyze: baseline written to {}", path.display());
    } else {
        let default_path = root.join("crates/flow-analyze/analyze-baseline.json");
        let effective = baseline_path.or_else(|| default_path.exists().then_some(default_path));
        if let Some(path) = effective {
            match std::fs::read_to_string(&path) {
                Ok(text) => match baseline::parse(&text) {
                    Ok(base) => ratchet_failures = baseline::compare(&counts, &base),
                    Err(e) => return infra_error(&format!("{}: {e}", path.display())),
                },
                Err(e) => return infra_error(&format!("reading {}: {e}", path.display())),
            }
        }
    }

    if format == Format::Json {
        print!("{}", emit::report_json(&report));
        for failure in &ratchet_failures {
            eprintln!("ratchet: {failure}");
        }
        return exit_findings(
            report.findings.len() + report.unused_entries.len() + ratchet_failures.len(),
        );
    }

    for f in &report.findings {
        println!("{f}");
    }
    if verbose {
        for f in &report.escaped {
            println!("(escaped) {f}");
        }
        for f in &report.suppressed {
            println!("(allowlisted) {f}");
        }
    }
    for e in &report.unused_entries {
        println!(
            "error: allowlist entry is stale (matched nothing): line {}: {} {} -- {}",
            e.line, e.lint, e.path_prefix, e.justification
        );
    }
    for failure in &ratchet_failures {
        println!("error: ratchet: {failure}");
    }
    println!(
        "flow-analyze check: {} file(s) scanned, {} finding(s), {} escaped, {} allowlisted",
        report.files_scanned,
        report.findings.len(),
        report.escaped.len(),
        report.suppressed.len()
    );
    exit_findings(report.findings.len() + report.unused_entries.len() + ratchet_failures.len())
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let mut cfg = ReplayConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parse_num = |v: Option<&String>, what: &str| -> Result<u64, String> {
            v.ok_or_else(|| format!("{what} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{what} needs an integer"))
        };
        let r = match a.as_str() {
            "--seed" => parse_num(it.next(), "--seed").map(|v| cfg.seed = v),
            "--chains" => parse_num(it.next(), "--chains").map(|v| cfg.chains = v as usize),
            "--samples" => parse_num(it.next(), "--samples").map(|v| cfg.samples = v as usize),
            "--nodes" => parse_num(it.next(), "--nodes").map(|v| cfg.nodes = v as usize),
            "--edges" => parse_num(it.next(), "--edges").map(|v| cfg.edges = v as usize),
            other => Err(format!("unknown replay flag {other:?}")),
        };
        if let Err(e) = r {
            return usage_error(&e);
        }
    }
    if cfg.chains == 0 || cfg.samples == 0 || cfg.nodes < 2 {
        return usage_error("replay needs chains >= 1, samples >= 1, nodes >= 2");
    }
    let report = run_replay(&cfg);
    for d in &report.divergences {
        println!("DIVERGENCE {d}");
    }
    println!(
        "flow-analyze replay: seed {} · {} chain(s) × {} sample(s) · estimate {:.4} · {}",
        cfg.seed,
        report.chains,
        report.samples,
        report.estimate,
        if report.deterministic() {
            "bit-identical across runs and threading modes"
        } else {
            "NOT deterministic"
        }
    );
    exit_findings(report.divergences.len())
}

fn exit_findings(n: usize) -> ExitCode {
    ExitCode::from(if n == 0 { 0 } else { 1 })
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// An analysis that could not run is a failing run (exit 1), not a
/// usage error: CI must go red, and the caller's invocation was fine.
fn infra_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(1)
}
