//! CLI driver: `cargo run -p flow-analyze -- <check|replay> [..]`.
//!
//! Exit codes: 0 clean, 1 contract violation (lint findings or replay
//! divergence), 2 usage or I/O error.

use flow_analyze::replay::{run_replay, ReplayConfig};
use flow_analyze::{check_paths, check_workspace, find_workspace_root};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
flow-analyze — workspace static analysis + determinism audit

USAGE:
    flow-analyze check [--root DIR] [--verbose] [--paths FILE..]
    flow-analyze replay [--seed N] [--chains N] [--samples N]
                        [--nodes N] [--edges N]

check   runs lints L1-L6 over the core crates, honouring
        crates/flow-analyze/allowlist.txt and
        `// flow-analyze: allow(Lx: why)` escape comments.
        With --paths, lints exactly the given files with every
        lint enabled and no allowlist (self-test mode).
replay  runs the parallel multi-chain estimator twice with one
        seed and diffs the trajectories step-by-step; any
        divergence is a determinism bug.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--verbose" | "-v" => verbose = true,
            "--paths" => {
                paths.extend(it.by_ref().map(PathBuf::from));
            }
            other => return usage_error(&format!("unknown check flag {other:?}")),
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage_error("could not locate the workspace root; pass --root"),
    };

    if !paths.is_empty() {
        return match check_paths(&root, &paths) {
            Ok(findings) => {
                for f in &findings {
                    println!("{f}");
                }
                println!(
                    "flow-analyze check (paths mode): {} finding(s) in {} file(s)",
                    findings.len(),
                    paths.len()
                );
                exit_findings(findings.len())
            }
            Err(e) => io_error(&e),
        };
    }

    match check_workspace(&root) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            if verbose {
                for f in &report.suppressed {
                    println!("(allowlisted) {f}");
                }
            }
            for e in &report.unused_entries {
                println!(
                    "warning: allowlist entry is stale (matched nothing): line {}: {} {} -- {}",
                    e.line, e.lint, e.path_prefix, e.justification
                );
            }
            println!(
                "flow-analyze check: {} file(s) scanned, {} finding(s), {} allowlisted",
                report.files_scanned,
                report.findings.len(),
                report.suppressed.len()
            );
            exit_findings(report.findings.len())
        }
        Err(e) => io_error(&e),
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let mut cfg = ReplayConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parse_num = |v: Option<&String>, what: &str| -> Result<u64, String> {
            v.ok_or_else(|| format!("{what} needs a value"))?
                .parse::<u64>()
                .map_err(|_| format!("{what} needs an integer"))
        };
        let r = match a.as_str() {
            "--seed" => parse_num(it.next(), "--seed").map(|v| cfg.seed = v),
            "--chains" => parse_num(it.next(), "--chains").map(|v| cfg.chains = v as usize),
            "--samples" => parse_num(it.next(), "--samples").map(|v| cfg.samples = v as usize),
            "--nodes" => parse_num(it.next(), "--nodes").map(|v| cfg.nodes = v as usize),
            "--edges" => parse_num(it.next(), "--edges").map(|v| cfg.edges = v as usize),
            other => Err(format!("unknown replay flag {other:?}")),
        };
        if let Err(e) = r {
            return usage_error(&e);
        }
    }
    if cfg.chains == 0 || cfg.samples == 0 || cfg.nodes < 2 {
        return usage_error("replay needs chains >= 1, samples >= 1, nodes >= 2");
    }
    let report = run_replay(&cfg);
    for d in &report.divergences {
        println!("DIVERGENCE {d}");
    }
    println!(
        "flow-analyze replay: seed {} · {} chain(s) × {} sample(s) · estimate {:.4} · {}",
        cfg.seed,
        report.chains,
        report.samples,
        report.estimate,
        if report.deterministic() {
            "bit-identical across runs and threading modes"
        } else {
            "NOT deterministic"
        }
    );
    exit_findings(report.divergences.len())
}

fn exit_findings(n: usize) -> ExitCode {
    ExitCode::from(if n == 0 { 0 } else { 1 })
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn io_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}
