//! Fixed-memory metrics aggregation: quantile sketches, windowed
//! counters, and the [`StatsAggregator`] sink that feeds them from the
//! ordinary [`Recorder`] channels.
//!
//! Tail behaviour, not the mean, is what serving workloads live and
//! die by, so the aggregation layer reports p50/p95/p99 from a
//! log-bucketed [`QuantileSketch`] (DDSketch-style: bounded relative
//! error, constant memory) instead of exact-but-unbounded reservoirs.
//! Counters are tracked both all-time and per *logical window* —
//! windows roll at batch boundaries (a deterministic coordinate), never
//! on wall-clock, so snapshots of the same event stream are
//! byte-identical (DESIGN.md §14).

use crate::event::Event;
use crate::recorder::Recorder;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ------------------------------------------------------ QuantileSketch

/// Number of log-spaced buckets. With [`GAMMA`] ≈ 1.105 this covers
/// values from 1 up to ~8e13 (about 22 hours in nanoseconds) before
/// clamping into the top bucket.
const BUCKETS: usize = 320;

/// Bucket growth ratio for 5% relative accuracy:
/// `gamma = (1 + α) / (1 − α)` with `α = 0.05`.
const GAMMA: f64 = 1.0 / 0.95 * 1.05;

/// Fixed-memory quantile sketch with bounded *relative* error.
///
/// Values are assigned to log-spaced buckets (`index =
/// ⌈ln v / ln γ⌉`); a reported quantile is the geometric midpoint of
/// the bucket holding that rank, so it is within ±5% of the true
/// value (α = 0.05). Memory is a constant `BUCKETS × 8` bytes per
/// sketch regardless of how many observations arrive. Inserting the
/// same multiset of values always yields the same buckets, so
/// snapshots are deterministic given deterministic inputs.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    buckets: Vec<u64>,
    count: u64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            buckets: vec![0; BUCKETS],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn index_of(value: f64) -> usize {
        if value <= 1.0 {
            return 0;
        }
        let idx = (value.ln() / GAMMA.ln()).ceil();
        if idx < 0.0 {
            0
        } else {
            (idx as usize).min(BUCKETS - 1)
        }
    }

    /// Geometric midpoint of bucket `i`: within ±α of any value the
    /// bucket holds.
    fn representative(i: usize) -> f64 {
        if i == 0 {
            return 1.0;
        }
        2.0 * GAMMA.powi(i as i32) / (1.0 + GAMMA)
    }

    /// Records one observation. Non-finite and negative values are
    /// dropped (they carry no rank information).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        self.buckets[Self::index_of(value)] += 1;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum observed value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact minimum observed value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// The value at quantile `q ∈ [0, 1]`, within ±5% relative error
    /// (`None` when empty). `q = 0` reports the exact minimum and
    /// `q = 1` the exact maximum.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Clamp into the observed range so sparse sketches
                // never report beyond their own min/max.
                return Some(Self::representative(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

// ----------------------------------------------------- WindowedCounter

/// Closed windows retained per counter.
const RETAINED_WINDOWS: usize = 8;

/// A monotonic counter that also tracks per-window subtotals.
///
/// Windows are *logical*: they close when [`WindowedCounter::roll`] is
/// called (the aggregator rolls every counter at batch boundaries),
/// never on wall-clock. The last [`RETAINED_WINDOWS`] closed windows
/// are kept so a snapshot can show recent rate alongside the all-time
/// total in constant memory.
#[derive(Debug, Clone, Default)]
pub struct WindowedCounter {
    total: u64,
    current: u64,
    closed: VecDeque<u64>,
}

impl WindowedCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the total and the open window.
    pub fn add(&mut self, delta: u64) {
        self.total += delta;
        self.current += delta;
    }

    /// Closes the open window, retaining at most
    /// [`RETAINED_WINDOWS`] closed subtotals.
    pub fn roll(&mut self) {
        self.closed.push_back(self.current);
        self.current = 0;
        while self.closed.len() > RETAINED_WINDOWS {
            self.closed.pop_front();
        }
    }

    /// All-time total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Subtotal of the still-open window.
    pub fn open_window(&self) -> u64 {
        self.current
    }

    /// Retained closed-window subtotals, oldest first.
    pub fn closed_windows(&self) -> Vec<u64> {
        self.closed.iter().copied().collect()
    }
}

// ----------------------------------------------------- StatsAggregator

#[derive(Debug, Default)]
struct AggState {
    counters: BTreeMap<&'static str, WindowedCounter>,
    gauges: BTreeMap<&'static str, f64>,
    sketches: BTreeMap<&'static str, QuantileSketch>,
    events: BTreeMap<String, u64>,
    windows_rolled: u64,
}

/// A [`Recorder`] that folds every channel into fixed-memory
/// aggregates: windowed counters, last-write gauges, per-name quantile
/// sketches (fed by both the `timing` and `histogram` channels), and
/// event counts by name.
///
/// The serving layer installs one next to the JSONL trace sink and
/// calls [`StatsAggregator::roll_windows`] once per batch; `repro
/// serve --stats-out` writes the [`StatsSnapshot`] at exit.
#[derive(Debug, Default)]
pub struct StatsAggregator {
    state: Mutex<AggState>,
}

impl StatsAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closes the current logical window on every counter. Call at a
    /// deterministic boundary (e.g. per served batch), never on a
    /// timer, so snapshots of the same stream stay byte-identical.
    pub fn roll_windows(&self) {
        let mut st = lock(&self.state);
        st.windows_rolled += 1;
        for c in st.counters.values_mut() {
            c.roll();
        }
    }

    /// Point-in-time copy of every aggregate.
    pub fn snapshot(&self) -> StatsSnapshot {
        let st = lock(&self.state);
        let counter = |name: &str| {
            st.counters
                .iter()
                .find(|(k, _)| **k == name)
                .map(|(_, c)| c.total())
                .unwrap_or(0)
        };
        let hits = counter("serve.cache.hit");
        let misses = counter("serve.cache.miss");
        let serve = ServeStatsSummary {
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_ratio: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            shed: counter("serve.shed"),
            retries: counter("serve.retry"),
            breaker_opens: counter("serve.breaker.open"),
        };
        StatsSnapshot {
            serve,
            counters: st
                .counters
                .iter()
                .map(|(k, c)| {
                    (
                        (*k).to_owned(),
                        CounterStat {
                            total: c.total(),
                            open_window: c.open_window(),
                            closed_windows: c.closed_windows(),
                        },
                    )
                })
                .collect(),
            gauges: st
                .gauges
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            quantiles: st
                .sketches
                .iter()
                .map(|(k, s)| {
                    (
                        (*k).to_owned(),
                        QuantileStat {
                            count: s.count(),
                            p50: s.quantile(0.50).unwrap_or(0.0),
                            p95: s.quantile(0.95).unwrap_or(0.0),
                            p99: s.quantile(0.99).unwrap_or(0.0),
                            max: s.max().unwrap_or(0.0),
                        },
                    )
                })
                .collect(),
            events: st.events.clone(),
            windows_rolled: st.windows_rolled,
        }
    }
}

impl Recorder for StatsAggregator {
    fn event(&self, event: &Event) {
        let mut st = lock(&self.state);
        *st.events.entry(event.name.to_owned()).or_insert(0) += 1;
    }

    fn counter(&self, name: &'static str, delta: u64) {
        lock(&self.state)
            .counters
            .entry(name)
            .or_default()
            .add(delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        lock(&self.state).gauges.insert(name, value);
    }

    fn histogram(&self, name: &'static str, value: f64) {
        lock(&self.state)
            .sketches
            .entry(name)
            .or_default()
            .record(value);
    }

    fn timing(&self, name: &'static str, nanos: u64) {
        lock(&self.state)
            .sketches
            .entry(name)
            .or_default()
            .record(nanos as f64);
    }
}

// ------------------------------------------------------- StatsSnapshot

/// Derived serving health numbers (the ones `BENCH_serve.json` and the
/// runtime snapshot share).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStatsSummary {
    /// Cache lookups that hit.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 when no lookups happened.
    pub cache_hit_ratio: f64,
    /// Admission-control sheds.
    pub shed: u64,
    /// Plan retry attempts.
    pub retries: u64,
    /// Circuit-breaker open transitions.
    pub breaker_opens: u64,
}

/// One counter's aggregate view.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStat {
    /// All-time total.
    pub total: u64,
    /// Subtotal of the still-open window.
    pub open_window: u64,
    /// Retained closed-window subtotals, oldest first.
    pub closed_windows: Vec<u64>,
}

/// One sketch's quantile summary.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileStat {
    /// Observations recorded.
    pub count: u64,
    /// Median (±5% relative error).
    pub p50: f64,
    /// 95th percentile (±5% relative error).
    pub p95: f64,
    /// 99th percentile (±5% relative error).
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

/// Point-in-time aggregate state, renderable as deterministic text or
/// JSON (`BTreeMap` key order; floats in shortest round-trip form).
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Derived serving summary.
    pub serve: ServeStatsSummary,
    /// Windowed counters by name.
    pub counters: BTreeMap<String, CounterStat>,
    /// Last-write gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Quantile summaries by sketch name.
    pub quantiles: BTreeMap<String, QuantileStat>,
    /// Event counts by name.
    pub events: BTreeMap<String, u64>,
    /// Windows closed so far.
    pub windows_rolled: u64,
}

/// Shortest-round-trip float rendering shared by both snapshot forms;
/// non-finite values render as quoted strings, mirroring the JSONL
/// trace convention.
fn push_f64_json(s: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(s, "{v}");
    } else if v.is_nan() {
        s.push_str("\"NaN\"");
    } else if v > 0.0 {
        s.push_str("\"inf\"");
    } else {
        s.push_str("\"-inf\"");
    }
}

impl StatsSnapshot {
    /// Renders the human-readable text form.
    pub fn render_text(&self) -> String {
        let mut s = String::from("== flow-obs stats ==\n");
        let _ = writeln!(
            s,
            "serve: hit_ratio={} ({}/{} lookups) shed={} retries={} breaker_opens={}",
            self.serve.cache_hit_ratio,
            self.serve.cache_hits,
            self.serve.cache_hits + self.serve.cache_misses,
            self.serve.shed,
            self.serve.retries,
            self.serve.breaker_opens,
        );
        let _ = writeln!(s, "windows_rolled: {}", self.windows_rolled);
        if !self.quantiles.is_empty() {
            s.push_str("latency quantiles (ns unless noted):\n");
            for (name, q) in &self.quantiles {
                let _ = writeln!(
                    s,
                    "  {name:<32} n={} p50={} p95={} p99={} max={}",
                    q.count, q.p50, q.p95, q.p99, q.max
                );
            }
        }
        if !self.counters.is_empty() {
            s.push_str("counters (total | open window | closed windows):\n");
            for (name, c) in &self.counters {
                let windows: Vec<String> = c.closed_windows.iter().map(|w| w.to_string()).collect();
                let _ = writeln!(
                    s,
                    "  {name:<32} {} | {} | [{}]",
                    c.total,
                    c.open_window,
                    windows.join(" ")
                );
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(s, "  {name:<32} {v}");
            }
        }
        if !self.events.is_empty() {
            s.push_str("events:\n");
            for (name, n) in &self.events {
                let _ = writeln!(s, "  {name:<32} {n}");
            }
        }
        s
    }

    /// Renders the JSON form (schema [`flow_core::schema::OBS_STATS`]).
    /// Key order is fixed, map entries are sorted, floats use shortest
    /// round-trip form: the output is deterministic given
    /// deterministic inputs.
    pub fn render_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"schema\": \"{}\",\n",
            flow_core::schema::OBS_STATS.tag()
        );
        let _ = writeln!(
            s,
            "  \"serve\": {{\"cache_hit_ratio\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"shed\": {}, \"retries\": {}, \"breaker_opens\": {}}},",
            self.serve.cache_hit_ratio,
            self.serve.cache_hits,
            self.serve.cache_misses,
            self.serve.shed,
            self.serve.retries,
            self.serve.breaker_opens,
        );
        let _ = writeln!(s, "  \"windows_rolled\": {},", self.windows_rolled);
        s.push_str("  \"quantiles\": {");
        for (i, (name, q)) in self.quantiles.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{name}\": {{\"count\": {}, \"p50\": ", q.count);
            push_f64_json(&mut s, q.p50);
            s.push_str(", \"p95\": ");
            push_f64_json(&mut s, q.p95);
            s.push_str(", \"p99\": ");
            push_f64_json(&mut s, q.p99);
            s.push_str(", \"max\": ");
            push_f64_json(&mut s, q.max);
            s.push('}');
        }
        if !self.quantiles.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"counters\": {");
        for (i, (name, c)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let windows: Vec<String> = c.closed_windows.iter().map(|w| w.to_string()).collect();
            let _ = write!(
                s,
                "\n    \"{name}\": {{\"total\": {}, \"open_window\": {}, \"closed_windows\": [{}]}}",
                c.total,
                c.open_window,
                windows.join(", ")
            );
        }
        if !self.counters.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{name}\": ");
            push_f64_json(&mut s, *v);
        }
        if !self.gauges.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"events\": {");
        for (i, (name, n)) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{name}\": {n}");
        }
        if !self.events.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_quantiles_have_bounded_relative_error() {
        let mut sk = QuantileSketch::new();
        for v in 1..=10_000u64 {
            sk.record(v as f64);
        }
        assert_eq!(sk.count(), 10_000);
        for (q, truth) in [(0.50, 5000.0), (0.95, 9500.0), (0.99, 9900.0)] {
            let got = sk.quantile(q).unwrap();
            let rel = (got - truth).abs() / truth;
            assert!(rel <= 0.055, "q{q}: got {got}, truth {truth}, rel {rel}");
        }
        assert_eq!(sk.quantile(1.0), Some(10_000.0));
        assert_eq!(sk.quantile(0.0), Some(1.0));
    }

    #[test]
    fn sketch_is_fixed_memory_and_clamps_extremes() {
        let mut sk = QuantileSketch::new();
        sk.record(0.0);
        sk.record(1e300); // clamps into the top bucket
        sk.record(f64::NAN); // dropped
        sk.record(-5.0); // dropped
        assert_eq!(sk.count(), 2);
        assert_eq!(sk.max(), Some(1e300));
        assert_eq!(sk.buckets.len(), BUCKETS);
    }

    #[test]
    fn same_observations_yield_byte_identical_snapshots() {
        let render = || {
            let agg = StatsAggregator::new();
            for i in 0..500u64 {
                agg.histogram("serve.latency", (i * 37 % 9973) as f64);
                agg.counter("serve.cache.hit", i % 3);
            }
            agg.counter("serve.cache.miss", 7);
            agg.gauge("serve.queue.depth", 4.0);
            agg.event(&Event::new("serve.shed"));
            agg.roll_windows();
            agg.counter("serve.cache.hit", 5);
            let snap = agg.snapshot();
            (snap.render_text(), snap.render_json())
        };
        let (t1, j1) = render();
        let (t2, j2) = render();
        assert_eq!(t1, t2, "text snapshot must be byte-identical");
        assert_eq!(j1, j2, "json snapshot must be byte-identical");
        assert!(j1.contains("\"schema\": \"flow-obs/stats-v1\""));
    }

    #[test]
    fn windows_roll_and_retain_a_bounded_history() {
        let mut c = WindowedCounter::new();
        for w in 0..12u64 {
            c.add(w + 1);
            c.roll();
        }
        c.add(100);
        assert_eq!(c.total(), (1..=12).sum::<u64>() + 100);
        assert_eq!(c.open_window(), 100);
        let closed = c.closed_windows();
        assert_eq!(closed.len(), RETAINED_WINDOWS, "history is bounded");
        assert_eq!(closed, vec![5, 6, 7, 8, 9, 10, 11, 12], "oldest evicted");
    }

    #[test]
    fn aggregator_derives_the_serve_summary() {
        let agg = StatsAggregator::new();
        agg.counter("serve.cache.hit", 3);
        agg.counter("serve.cache.miss", 1);
        agg.counter("serve.shed", 2);
        agg.counter("serve.retry", 4);
        agg.counter("serve.breaker.open", 1);
        let snap = agg.snapshot();
        assert_eq!(snap.serve.cache_hits, 3);
        assert_eq!(snap.serve.cache_misses, 1);
        assert_eq!(snap.serve.cache_hit_ratio, 0.75);
        assert_eq!(snap.serve.shed, 2);
        assert_eq!(snap.serve.retries, 4);
        assert_eq!(snap.serve.breaker_opens, 1);
    }

    #[test]
    fn empty_aggregator_snapshots_cleanly() {
        let snap = StatsAggregator::new().snapshot();
        assert_eq!(snap.serve.cache_hit_ratio, 0.0);
        let json = snap.render_json();
        assert!(json.contains("\"quantiles\": {}"));
        assert!(json.contains("\"counters\": {}"));
    }
}
