//! Recorder implementations (sinks): in-memory for tests, a
//! human-readable stderr summary for operators, a deterministic JSONL
//! trace for replay comparison, and a tee combinator.
//!
//! This file is the one place in the core crates allowed to print
//! directly (flow-analyze lint L5 exempts it): the stderr summary sink
//! is *the* sanctioned console output path for library telemetry.

use crate::event::{Event, FieldValue};
use crate::recorder::Recorder;
use crate::registry::{MetricsRegistry, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------- MemorySink

/// Buffers everything in memory; the sink tests assert against.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    registry: MetricsRegistry,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        lock(&self.events).clone()
    }

    /// The recorded events with the given name, in arrival order.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        lock(&self.events)
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }

    /// Current value of a counter routed through this sink.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.registry.counter_value(name)
    }

    /// The metrics registry backing the non-event channels.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

impl Recorder for MemorySink {
    fn event(&self, event: &Event) {
        lock(&self.events).push(event.clone());
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.registry.add_counter(name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.registry.set_gauge(name, value);
    }

    fn histogram(&self, name: &'static str, value: f64) {
        self.registry.record_histogram(name, value);
    }

    fn timing(&self, name: &'static str, nanos: u64) {
        self.registry.record_timing(name, nanos);
    }
}

// --------------------------------------------------- StderrSummarySink

/// Aggregates every channel and renders a human-readable summary on
/// demand (the `repro --metrics` flag prints it at exit).
#[derive(Debug, Default)]
pub struct StderrSummarySink {
    registry: MetricsRegistry,
    event_counts: Mutex<BTreeMap<String, u64>>,
}

impl StderrSummarySink {
    /// Creates an empty summary sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Point-in-time copy of the aggregated metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Renders the summary: event counts by name, then every metric
    /// channel. Deterministic given deterministic inputs (BTreeMap
    /// ordering), except for the wall-clock timing values.
    pub fn render(&self) -> String {
        let mut s = String::from("== flow-obs summary ==\n");
        let counts = lock(&self.event_counts);
        if !counts.is_empty() {
            s.push_str("events:\n");
            for (name, n) in counts.iter() {
                let _ = writeln!(s, "  {name:<32} {n}");
            }
        }
        drop(counts);
        s.push_str(&self.registry.snapshot().render());
        s
    }

    /// Prints the summary to stderr.
    pub fn print(&self) {
        eprintln!("{}", self.render());
    }
}

impl Recorder for StderrSummarySink {
    fn event(&self, event: &Event) {
        *lock(&self.event_counts)
            .entry(event.name.to_owned())
            .or_insert(0) += 1;
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.registry.add_counter(name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.registry.set_gauge(name, value);
    }

    fn histogram(&self, name: &'static str, value: f64) {
        self.registry.record_histogram(name, value);
    }

    fn timing(&self, name: &'static str, nanos: u64) {
        self.registry.record_timing(name, nanos);
    }
}

// ------------------------------------------------------------ JsonlSink

/// One buffered trace row. `stream` is a two-level key: untraced
/// events order by chain (`(0, 0)` = run-level, chain c = `(0, c+1)`);
/// traced events order by their trace id (`(1, trace)`), because a
/// trace — one query's causal history — is single-writer by the serve
/// execution model (planner thread first, then exactly one worker).
/// `seq` orders rows within a stream.
#[derive(Debug)]
struct Row {
    stream: (u64, u64),
    seq: u64,
    line: String,
}

#[derive(Debug, Default)]
struct JsonlState {
    rows: Vec<Row>,
    seqs: BTreeMap<(u64, u64), u64>,
}

/// Deterministic JSONL trace sink.
///
/// Events are serialised immediately and buffered per logical stream:
/// run-level, then chain 0, chain 1, ... for untraced events, then one
/// stream per trace id for traced events. [`JsonlSink::render`] sorts
/// by `(stream, sequence)` so the output is byte-identical across runs
/// of the same seed no matter how worker threads interleave — each
/// stream is single-writer by the DESIGN.md §10/§14 determinism rules
/// (a chain has one owning thread; a trace is planned on the batch
/// thread and executed by exactly one worker, never concurrently).
/// Counters, gauges, histograms, and wall-clock timings are
/// deliberately ignored: only the deterministic event channel reaches
/// the trace.
#[derive(Debug, Default)]
pub struct JsonlSink {
    state: Mutex<JsonlState>,
}

impl JsonlSink {
    /// Creates an empty trace sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        lock(&self.state).rows.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the trace: one JSON object per line, sorted by
    /// `(stream, sequence)`, with a trailing newline (empty string when
    /// no events were recorded).
    pub fn render(&self) -> String {
        let mut st = lock(&self.state);
        st.rows.sort_by_key(|r| (r.stream, r.seq));
        let mut out = String::new();
        for row in &st.rows {
            out.push_str(&row.line);
            out.push('\n');
        }
        out
    }

    /// Writes the rendered trace to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

impl Recorder for JsonlSink {
    fn event(&self, event: &Event) {
        let line = render_jsonl(event);
        let stream = match event.trace {
            Some(t) => (1, t),
            None => (0, event.chain.map(|c| c.saturating_add(1)).unwrap_or(0)),
        };
        let mut guard = lock(&self.state);
        let st = &mut *guard;
        let seq = st.seqs.entry(stream).or_insert(0);
        let s = *seq;
        *seq += 1;
        st.rows.push(Row {
            stream,
            seq: s,
            line,
        });
    }
}

/// Serialises one event as a single JSON line (no trailing newline).
/// Key order is fixed (`event`, `trace`, `chain`, `step`, `fields`)
/// and field order follows the event builder, so output is
/// deterministic.
pub fn render_jsonl(event: &Event) -> String {
    let mut s = String::with_capacity(64);
    s.push_str("{\"event\":");
    push_json_str(&mut s, event.name);
    if let Some(t) = event.trace {
        let _ = write!(s, ",\"trace\":{t}");
    }
    if let Some(c) = event.chain {
        let _ = write!(s, ",\"chain\":{c}");
    }
    if let Some(st) = event.step {
        let _ = write!(s, ",\"step\":{st}");
    }
    if !event.fields.is_empty() {
        s.push_str(",\"fields\":{");
        for (i, (k, v)) in event.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_str(&mut s, k);
            s.push(':');
            push_json_value(&mut s, v);
        }
        s.push('}');
    }
    s.push('}');
    s
}

fn push_json_value(s: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(v) => {
            let _ = write!(s, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(s, "{v}");
        }
        FieldValue::F64(v) => {
            if v.is_finite() {
                // `{}` is the shortest round-trip form: deterministic
                // and parseable as a JSON number.
                let _ = write!(s, "{v}");
            } else if v.is_nan() {
                s.push_str("\"NaN\"");
            } else if *v > 0.0 {
                s.push_str("\"inf\"");
            } else {
                s.push_str("\"-inf\"");
            }
        }
        FieldValue::Bool(v) => {
            s.push_str(if *v { "true" } else { "false" });
        }
        FieldValue::Str(v) => push_json_str(s, v),
    }
}

fn push_json_str(s: &mut String, raw: &str) {
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

// ------------------------------------------------------------ MultiSink

/// Fans every channel out to several sinks (e.g. JSONL trace + stderr
/// summary in the same run).
pub struct MultiSink {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl MultiSink {
    /// Creates a tee over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        MultiSink { sinks }
    }
}

impl Recorder for MultiSink {
    fn event(&self, event: &Event) {
        for s in &self.sinks {
            s.event(event);
        }
    }

    fn counter(&self, name: &'static str, delta: u64) {
        for s in &self.sinks {
            s.counter(name, delta);
        }
    }

    fn gauge(&self, name: &'static str, value: f64) {
        for s in &self.sinks {
            s.gauge(name, value);
        }
    }

    fn histogram(&self, name: &'static str, value: f64) {
        for s in &self.sinks {
            s.histogram(name, value);
        }
    }

    fn timing(&self, name: &'static str, nanos: u64) {
        for s in &self.sinks {
            s.timing(name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_have_fixed_key_order() {
        let e = Event::new("watchdog.stall")
            .chain(2)
            .step(700)
            .f64("acceptance_rate", 0.015)
            .u64("attempt", 1)
            .str("note", "a\"b\\c\nd");
        assert_eq!(
            render_jsonl(&e),
            "{\"event\":\"watchdog.stall\",\"chain\":2,\"step\":700,\
             \"fields\":{\"acceptance_rate\":0.015,\"attempt\":1,\
             \"note\":\"a\\\"b\\\\c\\nd\"}}"
        );
        let t = Event::new("serve.plan.start")
            .trace(0xBEEF)
            .chain(2)
            .step(7);
        assert_eq!(
            render_jsonl(&t),
            "{\"event\":\"serve.plan.start\",\"trace\":48879,\"chain\":2,\"step\":7}"
        );
    }

    #[test]
    fn jsonl_renders_nonfinite_floats_as_strings() {
        let e = Event::new("x").f64("a", f64::NAN).f64("b", f64::INFINITY);
        let line = render_jsonl(&e);
        assert!(line.contains("\"a\":\"NaN\""));
        assert!(line.contains("\"b\":\"inf\""));
    }

    #[test]
    fn jsonl_sink_orders_by_stream_then_sequence() {
        let sink = JsonlSink::new();
        // Simulate interleaved arrival from two chains plus run-level.
        sink.event(&Event::new("b").chain(1).step(1));
        sink.event(&Event::new("run.start"));
        sink.event(&Event::new("a").chain(0).step(1));
        sink.event(&Event::new("c").chain(1).step(2));
        sink.event(&Event::new("d").chain(0).step(2));
        let out = sink.render();
        let names: Vec<&str> = out
            .lines()
            .map(|l| {
                let from = l.find(":\"").map(|i| i + 2).unwrap_or(0);
                let to = l[from..].find('"').map(|i| from + i).unwrap_or(l.len());
                &l[from..to]
            })
            .collect();
        assert_eq!(names, ["run.start", "a", "d", "b", "c"]);
    }

    #[test]
    fn jsonl_sink_gives_each_trace_its_own_stream() {
        let sink = JsonlSink::new();
        // Two traced queries interleaved with untraced run/chain events,
        // simulating planner + worker arrival order. Traced events must
        // regroup per trace after all untraced streams.
        sink.event(&Event::new("q.plan").trace(7));
        sink.event(&Event::new("run.start"));
        sink.event(&Event::new("q.plan").trace(3));
        sink.event(&Event::new("q.exec").trace(7));
        sink.event(&Event::new("chain.step").chain(0));
        sink.event(&Event::new("q.exec").trace(3));
        sink.event(&Event::new("q.done").trace(7));
        let out = sink.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            [
                "{\"event\":\"run.start\"}",
                "{\"event\":\"chain.step\",\"chain\":0}",
                "{\"event\":\"q.plan\",\"trace\":3}",
                "{\"event\":\"q.exec\",\"trace\":3}",
                "{\"event\":\"q.plan\",\"trace\":7}",
                "{\"event\":\"q.exec\",\"trace\":7}",
                "{\"event\":\"q.done\",\"trace\":7}",
            ]
        );
    }

    #[test]
    fn memory_sink_routes_all_channels() {
        let sink = MemorySink::new();
        sink.event(&Event::new("e1"));
        sink.counter("c", 3);
        sink.gauge("g", 1.5);
        sink.histogram("h", 0.5);
        sink.timing("t", 100);
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events_named("e1").len(), 1);
        assert_eq!(sink.counter_value("c"), 3);
        assert_eq!(sink.registry().gauge_value("g"), Some(1.5));
        assert_eq!(sink.registry().timing_stat("t").unwrap().count, 1);
    }

    #[test]
    fn multi_sink_tees_to_every_target() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let tee = MultiSink::new(vec![a.clone() as Arc<dyn Recorder>, b.clone() as _]);
        tee.event(&Event::new("x"));
        tee.counter("c", 2);
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
        assert_eq!(a.counter_value("c"), 2);
        assert_eq!(b.counter_value("c"), 2);
    }

    #[test]
    fn stderr_summary_renders_event_counts() {
        let s = StderrSummarySink::new();
        s.event(&Event::new("chain.finish"));
        s.event(&Event::new("chain.finish"));
        s.counter("sampler.steps", 10);
        let text = s.render();
        assert!(text.contains("chain.finish"));
        assert!(text.contains("sampler.steps"));
    }
}
