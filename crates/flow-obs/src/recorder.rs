//! The [`Recorder`] trait and the global / thread-local dispatch handle.
//!
//! The disabled path is a single relaxed load of an `AtomicBool` plus a
//! branch, so instrumentation left in hot loops costs close to nothing
//! when no recorder is installed (the overhead budget is pinned by
//! `BENCH_sampler.json`; see DESIGN.md §10).
//!
//! Dispatch precedence: a thread-local [`ScopedRecorder`] wins over the
//! process-wide global recorder. Tests install scoped recorders so
//! parallel test threads never observe each other's telemetry.

use crate::event::Event;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Backend interface for observability data.
///
/// All methods take `&self`: recorders are shared across threads and
/// must synchronise internally. Every method except [`Recorder::event`]
/// has a no-op default so sinks implement only the channels they carry.
pub trait Recorder: Send + Sync {
    /// Records a structured event on the deterministic trace stream.
    fn event(&self, event: &Event);

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records one observation into the named fixed-bucket histogram.
    fn histogram(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records a wall-clock duration for the named span.
    ///
    /// Durations are nondeterministic by nature; sinks that promise
    /// replay-comparable output (the JSONL trace) MUST ignore this
    /// channel (DESIGN.md §10 determinism rules).
    fn timing(&self, name: &'static str, nanos: u64) {
        let _ = (name, nanos);
    }
}

/// Fast-path gate: true while at least one recorder (global or any
/// thread's scoped recorder) is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Number of installed recorders backing [`ENABLED`].
static INSTALLS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide recorder, consulted when no scoped recorder is set.
static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

thread_local! {
    /// Per-thread recorder override (test isolation).
    static LOCAL: RefCell<Option<Arc<dyn Recorder>>> = const { RefCell::new(None) };
    /// Ambient chain coordinate stamped onto chain-less events.
    static CHAIN: Cell<Option<u64>> = const { Cell::new(None) };
    /// Ambient trace (query) coordinate stamped onto trace-less events.
    static TRACE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// True while any recorder is installed. This is the only cost the
/// instrumented hot paths pay when observability is off.
#[inline(always)]
pub fn enabled() -> bool {
    // flow-analyze: allow(L9: installs and removes store ENABLED with SeqCst — a stale read here only skips or records one extra telemetry event and never gates estimator or serving state)
    ENABLED.load(Ordering::Relaxed)
}

fn add_install() {
    INSTALLS.fetch_add(1, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

fn remove_install() {
    if INSTALLS.fetch_sub(1, Ordering::SeqCst) == 1 {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// Installs (`Some`) or removes (`None`) the process-wide recorder.
///
/// The CLI installs its sink stack here once at startup; library code
/// never calls this. Tests should prefer [`ScopedRecorder`].
pub fn set_global(recorder: Option<Arc<dyn Recorder>>) {
    let had;
    let has = recorder.is_some();
    {
        let mut slot = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
        had = slot.is_some();
        *slot = recorder;
    }
    match (had, has) {
        (false, true) => add_install(),
        (true, false) => remove_install(),
        _ => {}
    }
}

/// RAII guard installing a recorder for the current thread only.
///
/// While alive, telemetry emitted on this thread goes to `recorder`
/// even if a global recorder is also installed. Dropping the guard
/// restores whatever was installed before. The guard is `!Send`: it
/// must drop on the thread that created it.
pub struct ScopedRecorder {
    prev: Option<Arc<dyn Recorder>>,
    _not_send: PhantomData<*const ()>,
}

impl ScopedRecorder {
    /// Installs `recorder` for the current thread until drop.
    pub fn install(recorder: Arc<dyn Recorder>) -> Self {
        let prev = LOCAL.with(|l| l.borrow_mut().replace(recorder));
        if prev.is_none() {
            add_install();
        }
        ScopedRecorder {
            prev,
            _not_send: PhantomData,
        }
    }
}

impl Drop for ScopedRecorder {
    fn drop(&mut self) {
        let restored = self.prev.take();
        let restoring = restored.is_some();
        LOCAL.with(|l| *l.borrow_mut() = restored);
        if !restoring {
            remove_install();
        }
    }
}

/// RAII guard declaring "work on this thread belongs to chain `c`".
///
/// Events built without an explicit chain, and spans opened while the
/// context is alive, are stamped with this chain index. The parallel
/// estimator enters a context per worker so per-chain JSONL streams
/// stay deterministic regardless of thread interleaving. `!Send` for
/// the same reason as [`ScopedRecorder`].
pub struct ChainContext {
    prev: Option<u64>,
    _not_send: PhantomData<*const ()>,
}

impl ChainContext {
    /// Marks the current thread as working on chain `chain` until drop.
    pub fn enter(chain: u64) -> Self {
        let prev = CHAIN.with(|c| c.replace(Some(chain)));
        ChainContext {
            prev,
            _not_send: PhantomData,
        }
    }
}

impl Drop for ChainContext {
    fn drop(&mut self) {
        let prev = self.prev;
        CHAIN.with(|c| c.set(prev));
    }
}

/// The ambient chain coordinate, if a [`ChainContext`] is active.
pub(crate) fn current_chain() -> Option<u64> {
    CHAIN.with(Cell::get)
}

/// RAII guard declaring "work on this thread serves trace (query) `t`".
///
/// A trace id is a deterministic, clock-free identifier for one query:
/// the serving layer derives it from the canonical query key and the
/// query's index in its batch, so two runs of one seed stamp identical
/// ids. Events built without an explicit trace, and spans opened while
/// the context is alive, inherit this id — which is what lets a flat
/// JSONL trace be re-grouped into per-query span trees afterwards.
/// `!Send` for the same reason as [`ScopedRecorder`].
pub struct TraceContext {
    prev: Option<u64>,
    _not_send: PhantomData<*const ()>,
}

impl TraceContext {
    /// Marks the current thread as serving trace `trace` until drop.
    pub fn enter(trace: u64) -> Self {
        let prev = TRACE.with(|t| t.replace(Some(trace)));
        TraceContext {
            prev,
            _not_send: PhantomData,
        }
    }
}

impl Drop for TraceContext {
    fn drop(&mut self) {
        let prev = self.prev;
        TRACE.with(|t| t.set(prev));
    }
}

/// The ambient trace coordinate, if a [`TraceContext`] is active.
pub(crate) fn current_trace() -> Option<u64> {
    TRACE.with(Cell::get)
}

/// The recorder the current thread would dispatch to (thread-local
/// first, then global), or `None` when telemetry is off.
///
/// Worker pools use this to *propagate* the caller's recorder into
/// spawned threads: capture it before `spawn`, then
/// [`ScopedRecorder::install`] the clone inside each worker. Without
/// this, a test's thread-scoped sink would silently miss everything
/// its workers emit.
pub fn current_recorder() -> Option<Arc<dyn Recorder>> {
    if !enabled() {
        return None;
    }
    let local = LOCAL.with(|l| l.try_borrow().ok().and_then(|g| g.clone()));
    if local.is_some() {
        return local;
    }
    GLOBAL.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Runs `f` against the active recorder (thread-local first, then
/// global); no-op when none is installed. Callers check [`enabled`]
/// first so the disabled path never reaches the locks below.
pub(crate) fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    let local = LOCAL.with(|l| l.try_borrow().ok().and_then(|g| g.clone()));
    if let Some(r) = local {
        f(r.as_ref());
        return;
    }
    let global = GLOBAL.read().unwrap_or_else(|e| e.into_inner()).clone();
    if let Some(r) = global {
        f(r.as_ref());
    }
}
