//! Structured events: the unit of record for the tracing layer.
//!
//! Events are keyed by logical coordinates — `(chain, step)` — rather
//! than wall-clock time, so two runs of the same seed produce
//! byte-comparable traces (see DESIGN.md §10 for the taxonomy and the
//! determinism rules).

use std::fmt;

/// One field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer payload (counts, sizes, indices).
    U64(u64),
    /// Signed integer payload.
    I64(i64),
    /// Floating-point payload (rates, estimates, means).
    F64(f64),
    /// Boolean payload.
    Bool(bool),
    /// Short string payload (labels, phase names, reasons).
    Str(String),
}

impl FieldValue {
    /// Numeric view of the value, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::F64(v) => Some(*v),
            FieldValue::Bool(_) | FieldValue::Str(_) => None,
        }
    }

    /// Unsigned-integer view of the value, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// String view of the value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// A structured event on the deterministic trace stream.
///
/// `chain` and `step` are *logical* coordinates: the chain index within
/// a multi-chain run and the sampler step count at emission time. They
/// are never wall-clock derived, which is what makes JSONL traces from
/// two runs of the same seed byte-identical. `trace` is the causal
/// coordinate: the deterministic [`TraceId`](crate::TraceContext) of
/// the query the work belongs to, also clock-free.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, e.g. `watchdog.stall` (taxonomy: DESIGN.md §10).
    pub name: &'static str,
    /// Trace (query) the event belongs to; `None` for unattributed work.
    /// Filled in from the ambient [`crate::TraceContext`] when absent.
    pub trace: Option<u64>,
    /// Chain index the event belongs to; `None` for run-level events.
    /// Filled in from the ambient [`crate::ChainContext`] when absent.
    pub chain: Option<u64>,
    /// Logical step coordinate (sampler steps for chain events).
    pub step: Option<u64>,
    /// Ordered key/value payload; order is preserved in serialised traces.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Starts a new event with the given dotted name.
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            trace: None,
            chain: None,
            step: None,
            fields: Vec::new(),
        }
    }

    /// Sets the trace (query) coordinate.
    pub fn trace(mut self, trace: u64) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Sets the chain coordinate.
    pub fn chain(mut self, chain: u64) -> Self {
        self.chain = Some(chain);
        self
    }

    /// Sets the logical step coordinate.
    pub fn step(mut self, step: u64) -> Self {
        self.step = Some(step);
        self
    }

    /// Appends an unsigned-integer field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, FieldValue::U64(value)));
        self
    }

    /// Appends a signed-integer field.
    pub fn i64(mut self, key: &'static str, value: i64) -> Self {
        self.fields.push((key, FieldValue::I64(value)));
        self
    }

    /// Appends a floating-point field.
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        self.fields.push((key, FieldValue::F64(value)));
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &'static str, value: bool) -> Self {
        self.fields.push((key, FieldValue::Bool(value)));
        self
    }

    /// Appends a string field.
    pub fn str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.fields.push((key, FieldValue::Str(value.into())));
        self
    }

    /// Looks up a field by key (first match wins).
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_field_order_and_coordinates() {
        let e = Event::new("chain.finish")
            .chain(3)
            .step(1200)
            .u64("samples", 50)
            .f64("acceptance_rate", 0.25)
            .bool("clean", true)
            .str("phase", "sampling");
        assert_eq!(e.name, "chain.finish");
        assert_eq!(e.chain, Some(3));
        assert_eq!(e.step, Some(1200));
        let keys: Vec<&str> = e.fields.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, ["samples", "acceptance_rate", "clean", "phase"]);
        assert_eq!(e.field("samples").and_then(FieldValue::as_u64), Some(50));
        assert_eq!(
            e.field("acceptance_rate").and_then(FieldValue::as_f64),
            Some(0.25)
        );
        assert_eq!(e.field("missing"), None);
    }
}
