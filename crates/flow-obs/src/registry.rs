//! Aggregating metrics registry: counters, gauges, fixed-bucket
//! histograms, and wall-clock timing statistics.
//!
//! Every map is a `BTreeMap` so snapshots iterate in a stable order —
//! summaries render identically across runs even though the timing
//! *values* are nondeterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A histogram with a fixed, pre-declared bucket layout over `[lo, hi)`.
///
/// Observations below `lo` or at/above `hi` land in dedicated
/// underflow/overflow counters rather than distorting edge buckets.
/// Non-finite observations count toward `overflow` and are excluded
/// from the running sum.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    finite: u64,
    sum: f64,
}

impl FixedHistogram {
    /// Creates a histogram with `buckets` equal-width bins over
    /// `[lo, hi)`. Degenerate layouts are repaired: at least one
    /// bucket, and `hi` is nudged above `lo` if needed.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        let hi = if hi > lo { hi } else { lo + 1.0 };
        FixedHistogram {
            lo,
            hi,
            buckets: vec![0; buckets.max(1)],
            underflow: 0,
            overflow: 0,
            count: 0,
            finite: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        if !value.is_finite() {
            self.overflow += 1;
            return;
        }
        self.finite += 1;
        self.sum += value;
        if value < self.lo {
            self.underflow += 1;
            return;
        }
        if value >= self.hi {
            self.overflow += 1;
            return;
        }
        let frac = (value - self.lo) / (self.hi - self.lo);
        let idx = ((frac * self.buckets.len() as f64) as usize).min(self.buckets.len() - 1);
        if let Some(b) = self.buckets.get_mut(idx) {
            *b += 1;
        }
    }

    /// Total observations recorded, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the finite observations (0 when none recorded).
    pub fn mean(&self) -> f64 {
        if self.finite == 0 {
            0.0
        } else {
            self.sum / self.finite as f64
        }
    }

    /// Per-bucket counts, low bin first.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// The `[lo, hi)` range the buckets span.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi` (plus non-finite ones).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[lo, hi)` sub-range bucket `i` covers (clamped to the last
    /// bucket for out-of-range `i`).
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let n = self.buckets.len();
        let i = i.min(n - 1);
        let w = (self.hi - self.lo) / n as f64;
        (self.lo + w * i as f64, self.lo + w * (i as f64 + 1.0))
    }
}

/// Aggregate wall-clock statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingStat {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock nanoseconds across spans.
    pub total_nanos: u64,
    /// Longest single span in nanoseconds.
    pub max_nanos: u64,
}

/// Thread-safe registry aggregating every metric channel.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, f64>>,
    histograms: Mutex<BTreeMap<&'static str, FixedHistogram>>,
    timings: Mutex<BTreeMap<&'static str, TimingStat>>,
    specs: Mutex<BTreeMap<&'static str, (f64, f64, usize)>>,
}

/// Default histogram layout for undeclared names: rates in `[0, 1)`
/// split into 20 bins.
const DEFAULT_HIST: (f64, f64, usize) = (0.0, 1.0, 20);

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the bucket layout a histogram will use. Undeclared
    /// histograms default to 20 bins over `[0, 1)` (rates). Declaring
    /// after the first observation has no effect.
    pub fn declare_histogram(&self, name: &'static str, lo: f64, hi: f64, buckets: usize) {
        lock(&self.specs).insert(name, (lo, hi, buckets));
    }

    /// Adds `delta` to the named counter.
    pub fn add_counter(&self, name: &'static str, delta: u64) {
        *lock(&self.counters).entry(name).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        lock(&self.gauges).insert(name, value);
    }

    /// Records one histogram observation.
    pub fn record_histogram(&self, name: &'static str, value: f64) {
        let (lo, hi, n) = lock(&self.specs).get(name).copied().unwrap_or(DEFAULT_HIST);
        lock(&self.histograms)
            .entry(name)
            .or_insert_with(|| FixedHistogram::new(lo, hi, n))
            .record(value);
    }

    /// Records one wall-clock span duration.
    pub fn record_timing(&self, name: &'static str, nanos: u64) {
        let mut t = lock(&self.timings);
        let s = t.entry(name).or_default();
        s.count += 1;
        s.total_nanos = s.total_nanos.saturating_add(nanos);
        s.max_nanos = s.max_nanos.max(nanos);
    }

    /// Current value of the named counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        lock(&self.counters).get(name).copied().unwrap_or(0)
    }

    /// Current value of the named gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        lock(&self.gauges).get(name).copied()
    }

    /// Timing statistics for the named span.
    pub fn timing_stat(&self, name: &str) -> Option<TimingStat> {
        lock(&self.timings).get(name).copied()
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
            timings: lock(&self.timings)
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name/value pairs.
    pub counters: Vec<(String, u64)>,
    /// Gauge name/value pairs.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name/state pairs.
    pub histograms: Vec<(String, FixedHistogram)>,
    /// Timing name/statistics pairs.
    pub timings: Vec<(String, TimingStat)>,
}

/// Renders nanoseconds with an adaptive unit.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

impl MetricsSnapshot {
    /// Human-readable multi-line summary of every channel.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if !self.counters.is_empty() {
            s.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(s, "  {name:<32} {v}");
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(s, "  {name:<32} {v:.6}");
            }
        }
        if !self.histograms.is_empty() {
            s.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let (lo, hi) = h.bounds();
                let _ = writeln!(
                    s,
                    "  {name:<32} n={} mean={:.4} range=[{lo},{hi}) under={} over={}",
                    h.count(),
                    h.mean(),
                    h.underflow(),
                    h.overflow()
                );
                let peak = h.bucket_counts().iter().copied().max().unwrap_or(0);
                if peak > 0 {
                    for (i, &c) in h.bucket_counts().iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        let (blo, bhi) = h.bucket_bounds(i);
                        let bar = "#".repeat(((c * 24).div_ceil(peak.max(1))) as usize);
                        let _ = writeln!(s, "    [{blo:.3},{bhi:.3}) {c:>8} {bar}");
                    }
                }
            }
        }
        if !self.timings.is_empty() {
            s.push_str("timings (wall-clock, nondeterministic):\n");
            for (name, t) in &self.timings {
                let mean = t.total_nanos.checked_div(t.count).unwrap_or(0);
                let _ = writeln!(
                    s,
                    "  {name:<32} n={} total={} mean={} max={}",
                    t.count,
                    fmt_nanos(t.total_nanos),
                    fmt_nanos(mean),
                    fmt_nanos(t.max_nanos)
                );
            }
        }
        if s.is_empty() {
            s.push_str("(no metrics recorded)\n");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_places_observations_in_declared_buckets() {
        let mut h = FixedHistogram::new(0.0, 1.0, 10);
        h.record(0.05); // bucket 0
        h.record(0.95); // bucket 9
        h.record(-0.1); // underflow
        h.record(1.0); // overflow (hi is exclusive)
        h.record(f64::NAN); // overflow, excluded from mean
        assert_eq!(h.count(), 5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[9], 1);
        let expected_mean = (0.05 + 0.95 - 0.1 + 1.0) / 4.0;
        assert!((h.mean() - expected_mean).abs() < 1e-12);
    }

    #[test]
    fn histogram_repairs_degenerate_layouts() {
        let mut h = FixedHistogram::new(2.0, 2.0, 0);
        h.record(2.5);
        assert_eq!(h.bucket_counts().len(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_aggregates_all_channels() {
        let r = MetricsRegistry::new();
        r.add_counter("sampler.steps", 5);
        r.add_counter("sampler.steps", 7);
        r.set_gauge("estimate.value", 0.25);
        r.set_gauge("estimate.value", 0.5);
        r.declare_histogram("latency", 0.0, 100.0, 4);
        r.record_histogram("latency", 30.0);
        r.record_timing("mcmc.burn_in", 1_000);
        r.record_timing("mcmc.burn_in", 3_000);

        assert_eq!(r.counter_value("sampler.steps"), 12);
        assert_eq!(r.gauge_value("estimate.value"), Some(0.5));
        let t = r.timing_stat("mcmc.burn_in").unwrap();
        assert_eq!((t.count, t.total_nanos, t.max_nanos), (2, 4_000, 3_000));

        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("sampler.steps".to_owned(), 12)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.bucket_counts(), &[0, 1, 0, 0]);
        let rendered = snap.render();
        assert!(rendered.contains("sampler.steps"));
        assert!(rendered.contains("timings"));
    }

    #[test]
    fn snapshot_render_is_stable_across_insertion_order() {
        let a = MetricsRegistry::new();
        a.add_counter("b", 1);
        a.add_counter("a", 1);
        let b = MetricsRegistry::new();
        b.add_counter("a", 1);
        b.add_counter("b", 1);
        assert_eq!(a.snapshot().render(), b.snapshot().render());
    }
}
