//! # flow-obs — structured observability for the flow-sampling runtime
//!
//! Zero-dependency tracing, metrics, and chain-health telemetry for the
//! MCMC stack (the workspace is offline/vendored, so no `tracing` or
//! `metrics` crates — this is the substrate every perf PR benchmarks
//! against). Four pieces:
//!
//! * a [`Recorder`] trait with a global / thread-local handle whose
//!   disabled path is one relaxed `AtomicBool` load plus a branch
//!   ([`enabled`]) — hot-loop instrumentation is near-free when off;
//! * a [`MetricsRegistry`] of counters, gauges, and fixed-bucket
//!   histograms;
//! * RAII [`Span`] timers for phase profiling (burn-in, thinning,
//!   Fenwick rebuild, checkpoint capture/resume, joint-Bayes sweeps);
//! * sinks: [`MemorySink`] (tests), [`StderrSummarySink`] (operators),
//!   and [`JsonlSink`] — a deterministic JSONL event stream keyed by
//!   `(chain, step)` rather than wall-clock, so traces from two runs of
//!   one seed are byte-identical and replay-comparable.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//!
//! let sink = Arc::new(flow_obs::MemorySink::new());
//! let _guard = flow_obs::ScopedRecorder::install(sink.clone());
//!
//! flow_obs::counter("sampler.steps", 1);
//! flow_obs::event(|| flow_obs::Event::new("chain.finish").chain(0).step(42));
//! {
//!     let _phase = flow_obs::span("mcmc.burn_in");
//!     // ... timed work ...
//! }
//!
//! assert_eq!(sink.counter_value("sampler.steps"), 1);
//! assert_eq!(sink.events_named("chain.finish").len(), 1);
//! ```
//!
//! The event taxonomy, the trace determinism rules, and the overhead
//! budget are specified in DESIGN.md §10 ("Observability contract").

pub mod agg;
pub mod event;
pub mod recorder;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;

pub use agg::{QuantileSketch, StatsAggregator, StatsSnapshot, WindowedCounter};
pub use event::{Event, FieldValue};
pub use recorder::{
    current_recorder, enabled, set_global, ChainContext, Recorder, ScopedRecorder, TraceContext,
};
pub use registry::{FixedHistogram, MetricsRegistry, MetricsSnapshot, TimingStat};
pub use sink::{JsonlSink, MemorySink, MultiSink, StderrSummarySink};
pub use span::Span;
pub use trace::{parse_line, parse_trace, TraceEvent, TraceValue};

/// Records a structured event. The closure runs only when a recorder
/// is installed, so event construction costs nothing when telemetry is
/// off. Events built without an explicit chain inherit the ambient
/// [`ChainContext`], and events without an explicit trace inherit the
/// ambient [`TraceContext`], if any.
#[inline]
pub fn record_event<F: FnOnce() -> Event>(build: F) {
    if !enabled() {
        return;
    }
    let mut e = build();
    if e.chain.is_none() {
        e.chain = recorder::current_chain();
    }
    if e.trace.is_none() {
        e.trace = recorder::current_trace();
    }
    recorder::with_recorder(|r| r.event(&e));
}

/// Alias for [`record_event`]; reads naturally at call sites
/// (`flow_obs::event(|| ...)`).
#[inline]
pub fn event<F: FnOnce() -> Event>(build: F) {
    record_event(build);
}

/// Adds `delta` to the named monotonic counter.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    recorder::with_recorder(|r| r.counter(name, delta));
}

/// Sets the named gauge.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    recorder::with_recorder(|r| r.gauge(name, value));
}

/// Records one observation into the named fixed-bucket histogram.
#[inline]
pub fn histogram(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    recorder::with_recorder(|r| r.histogram(name, value));
}

/// Records a wall-clock duration for the named span (nondeterministic
/// channel; deterministic sinks ignore it).
#[inline]
pub fn timing(name: &'static str, nanos: u64) {
    if !enabled() {
        return;
    }
    recorder::with_recorder(|r| r.timing(name, nanos));
}

/// Opens a run-level RAII phase span (chain inherited from the ambient
/// [`ChainContext`], if any).
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::new(name, None, None)
}

/// Opens a chain-scoped RAII phase span at an explicit `(chain, step)`.
#[inline]
pub fn chain_span(name: &'static str, chain: u64, step: u64) -> Span {
    Span::new(name, Some(chain), Some(step))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

    /// flow-obs state (the enabled flag) is process-global; tests that
    /// install recorders serialise on this lock so parallel test
    /// threads cannot perturb each other's enabled/disabled phases.
    fn guard() -> MutexGuard<'static, ()> {
        static M: OnceLock<Mutex<()>> = OnceLock::new();
        M.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_path_skips_event_construction() {
        let _g = guard();
        let mut built = false;
        event(|| {
            built = true;
            Event::new("never")
        });
        assert!(!built, "closure must not run with no recorder installed");
        assert!(!enabled());
    }

    #[test]
    fn scoped_recorder_captures_and_uninstalls() {
        let _g = guard();
        let sink = Arc::new(MemorySink::new());
        {
            let _r = ScopedRecorder::install(sink.clone());
            assert!(enabled());
            counter("c", 2);
            counter("c", 3);
            gauge("g", 0.5);
            histogram("h", 0.25);
            event(|| Event::new("e").u64("k", 1));
        }
        assert!(!enabled());
        counter("c", 100); // dropped: no recorder
        assert_eq!(sink.counter_value("c"), 5);
        assert_eq!(sink.registry().gauge_value("g"), Some(0.5));
        assert_eq!(sink.events_named("e").len(), 1);
    }

    #[test]
    fn scoped_recorder_nests_and_restores() {
        let _g = guard();
        let outer = Arc::new(MemorySink::new());
        let inner = Arc::new(MemorySink::new());
        let _o = ScopedRecorder::install(outer.clone());
        {
            let _i = ScopedRecorder::install(inner.clone());
            event(|| Event::new("x"));
        }
        event(|| Event::new("y"));
        assert_eq!(inner.events_named("x").len(), 1);
        assert_eq!(inner.events_named("y").len(), 0);
        assert_eq!(outer.events_named("y").len(), 1);
        assert_eq!(outer.events_named("x").len(), 0);
    }

    #[test]
    fn global_recorder_lifecycle() {
        let _g = guard();
        let sink = Arc::new(MemorySink::new());
        set_global(Some(sink.clone()));
        assert!(enabled());
        event(|| Event::new("via_global"));
        set_global(None);
        assert!(!enabled());
        event(|| Event::new("after_uninstall"));
        assert_eq!(sink.events_named("via_global").len(), 1);
        assert_eq!(sink.events_named("after_uninstall").len(), 0);
    }

    #[test]
    fn thread_local_wins_over_global() {
        let _g = guard();
        let global = Arc::new(MemorySink::new());
        let local = Arc::new(MemorySink::new());
        set_global(Some(global.clone()));
        {
            let _r = ScopedRecorder::install(local.clone());
            event(|| Event::new("scoped"));
        }
        event(|| Event::new("global"));
        set_global(None);
        assert_eq!(local.events_named("scoped").len(), 1);
        assert_eq!(global.events_named("scoped").len(), 0);
        assert_eq!(global.events_named("global").len(), 1);
    }

    #[test]
    fn chain_context_stamps_events_and_spans() {
        let _g = guard();
        let sink = Arc::new(MemorySink::new());
        let _r = ScopedRecorder::install(sink.clone());
        {
            let _c = ChainContext::enter(7);
            event(|| Event::new("inside"));
            event(|| Event::new("explicit").chain(3));
            let _s = span("phase.inner");
        }
        event(|| Event::new("outside"));
        assert_eq!(sink.events_named("inside")[0].chain, Some(7));
        assert_eq!(sink.events_named("explicit")[0].chain, Some(3));
        assert_eq!(sink.events_named("outside")[0].chain, None);
        let enters = sink.events_named("span.enter");
        assert_eq!(enters.len(), 1);
        assert_eq!(enters[0].chain, Some(7));
        let exits = sink.events_named("span.exit");
        assert_eq!(exits[0].chain, Some(7));
    }

    #[test]
    fn span_emits_enter_exit_and_timing() {
        let _g = guard();
        let sink = Arc::new(MemorySink::new());
        let _r = ScopedRecorder::install(sink.clone());
        {
            let _s = chain_span("mcmc.burn_in", 1, 500);
        }
        let enters = sink.events_named("span.enter");
        let exits = sink.events_named("span.exit");
        assert_eq!(enters.len(), 1);
        assert_eq!(exits.len(), 1);
        assert_eq!(
            enters[0].field("span").and_then(FieldValue::as_str),
            Some("mcmc.burn_in")
        );
        assert_eq!(enters[0].chain, Some(1));
        assert_eq!(enters[0].step, Some(500));
        assert_eq!(exits[0].chain, Some(1));
        let t = sink.registry().timing_stat("mcmc.burn_in").unwrap();
        assert_eq!(t.count, 1);
    }

    #[test]
    fn inert_span_costs_nothing_when_disabled() {
        let _g = guard();
        {
            let _s = span("never.recorded");
        }
        // Installing afterwards must show nothing from the inert span.
        let sink = Arc::new(MemorySink::new());
        let _r = ScopedRecorder::install(sink.clone());
        assert!(sink.events().is_empty());
        assert!(sink.registry().timing_stat("never.recorded").is_none());
    }

    #[test]
    fn jsonl_trace_is_identical_across_thread_interleavings() {
        let _g = guard();
        // Two "chains" writing through the same shared sink from racing
        // threads: the rendered trace must come out identical to the
        // sequential reference because each chain is its own stream.
        let reference = {
            let sink = Arc::new(JsonlSink::new());
            for chain in 0..2u64 {
                let _c = ChainContext::enter(chain);
                let _r = ScopedRecorder::install(sink.clone());
                for step in 0..50u64 {
                    event(|| Event::new("sample").step(step).u64("flow", step % 2));
                }
            }
            sink.render()
        };
        for _attempt in 0..4 {
            let sink = Arc::new(JsonlSink::new());
            std::thread::scope(|scope| {
                for chain in 0..2u64 {
                    let sink = sink.clone();
                    scope.spawn(move || {
                        let _c = ChainContext::enter(chain);
                        let _r = ScopedRecorder::install(sink);
                        for step in 0..50u64 {
                            event(|| Event::new("sample").step(step).u64("flow", step % 2));
                        }
                    });
                }
            });
            assert_eq!(sink.render(), reference);
        }
    }

    #[test]
    fn rendered_trace_round_trips_through_the_parser() {
        let _g = guard();
        let sink = Arc::new(JsonlSink::new());
        {
            let _r = ScopedRecorder::install(sink.clone());
            event(|| Event::new("run.start").u64("seed", 42));
            event(|| {
                Event::new("watchdog.stall")
                    .chain(1)
                    .step(900)
                    .f64("acceptance_rate", 0.0125)
            });
        }
        let text = sink.render();
        let parsed = parse_trace(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "run.start");
        assert_eq!(parsed[1].name, "watchdog.stall");
        assert_eq!(parsed[1].chain, Some(1));
        assert_eq!(parsed[1].step, Some(900));
        assert_eq!(parsed[1].num("acceptance_rate"), Some(0.0125));
    }
}
