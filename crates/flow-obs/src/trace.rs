//! Minimal JSONL trace reader for the `repro report` mode.
//!
//! Parses exactly the subset [`crate::sink::render_jsonl`] emits: one
//! flat JSON object per line with string keys and scalar values, plus
//! an optional one-level `"fields"` object. Unparseable lines are
//! skipped rather than failing the whole report — a truncated trace
//! from a killed run should still render.

/// One scalar value parsed from a trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// A non-negative JSON integer, kept exact. Trace ids are full
    /// 64-bit hashes, so routing them through `f64` would round away
    /// their low bits and break cross-event joins.
    U64(u64),
    /// Any other JSON number.
    Num(f64),
    /// A JSON boolean.
    Bool(bool),
    /// A JSON string.
    Str(String),
}

impl TraceValue {
    /// Numeric view of the value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TraceValue::U64(v) => Some(*v as f64),
            TraceValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Exact unsigned view: integers parse losslessly, floats only
    /// when they are integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            TraceValue::U64(v) => Some(*v),
            // flow-analyze: allow(L3: integrality test — fract() of an integral f64 is exactly 0.0)
            TraceValue::Num(v) if v.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(v) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }
}

/// One parsed trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The dotted event name.
    pub name: String,
    /// Trace (query) coordinate, when present.
    pub trace: Option<u64>,
    /// Chain coordinate, when present.
    pub chain: Option<u64>,
    /// Logical step coordinate, when present.
    pub step: Option<u64>,
    /// Field key/value pairs in file order.
    pub fields: Vec<(String, TraceValue)>,
}

impl TraceEvent {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&TraceValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric field lookup shorthand.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(TraceValue::as_f64)
    }

    /// Exact unsigned field lookup — required for id-valued fields
    /// (`plan_trace`) that must join against the `trace` coordinate.
    pub fn uint(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(TraceValue::as_u64)
    }
}

/// Parses a whole trace, skipping blank and unparseable lines.
pub fn parse_trace(text: &str) -> Vec<TraceEvent> {
    text.lines().filter_map(parse_line).collect()
}

/// Parses one JSONL trace line; `None` if it is not a trace event.
pub fn parse_line(line: &str) -> Option<TraceEvent> {
    let mut cur = Cur {
        b: line.as_bytes(),
        i: 0,
    };
    cur.skip_ws();
    let obj = cur.parse_object()?;
    cur.skip_ws();
    if !cur.at_end() {
        return None;
    }
    let mut ev = TraceEvent {
        name: String::new(),
        trace: None,
        chain: None,
        step: None,
        fields: Vec::new(),
    };
    let mut saw_name = false;
    for (key, value) in obj {
        match (key.as_str(), value) {
            ("event", Json::Str(s)) => {
                ev.name = s;
                saw_name = true;
            }
            ("trace", Json::U64(n)) => ev.trace = Some(n),
            ("chain", Json::U64(n)) => ev.chain = Some(n),
            ("step", Json::U64(n)) => ev.step = Some(n),
            ("fields", Json::Obj(pairs)) => {
                for (k, v) in pairs {
                    let tv = match v {
                        Json::U64(n) => TraceValue::U64(n),
                        Json::Num(n) => TraceValue::Num(n),
                        Json::Bool(b) => TraceValue::Bool(b),
                        Json::Str(s) => TraceValue::Str(s),
                        Json::Obj(_) | Json::Null => continue,
                    };
                    ev.fields.push((k, tv));
                }
            }
            _ => {}
        }
    }
    if saw_name {
        Some(ev)
    } else {
        None
    }
}

enum Json {
    /// Non-negative integer token, kept exact (see [`TraceValue::U64`]).
    U64(u64),
    Num(f64),
    Bool(bool),
    Str(String),
    Obj(Vec<(String, Json)>),
    Null,
}

struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl Cur<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn at_end(&self) -> bool {
        self.i >= self.b.len()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.bump();
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn parse_object(&mut self) -> Option<Vec<(String, Json)>> {
        if !self.eat(b'{') {
            return None;
        }
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Some(pairs);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return None;
            }
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Some(pairs);
            }
            return None;
        }
    }

    fn parse_value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'"' => self.parse_string().map(Json::Str),
            b'{' => self.parse_object().map(Json::Obj),
            b't' => self.parse_keyword("true").map(|_| Json::Bool(true)),
            b'f' => self.parse_keyword("false").map(|_| Json::Bool(false)),
            b'n' => self.parse_keyword("null").map(|_| Json::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str) -> Option<()> {
        let end = self.i.checked_add(word.len())?;
        if self.b.get(self.i..end)? == word.as_bytes() {
            self.i = end;
            Some(())
        } else {
            None
        }
    }

    fn parse_number(&mut self) -> Option<Json> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'-') | Some(b'+') | Some(b'.') | Some(b'e') | Some(b'E')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(self.b.get(start..self.i)?).ok()?;
        // Plain unsigned integers stay exact; everything else (floats,
        // negatives, exponents) takes the f64 path.
        if let Ok(n) = text.parse::<u64>() {
            return Some(Json::U64(n));
        }
        text.parse::<f64>().ok().map(Json::Num)
    }

    fn parse_string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            let c = self.peek()?;
            self.bump();
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.bump();
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let end = self.i.checked_add(4)?;
                            let hex = std::str::from_utf8(self.b.get(self.i..end)?).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            self.i = end;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return None,
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let tail = self.b.get(self.i.checked_sub(1)?..)?;
                    let s = std::str::from_utf8(tail).ok()?;
                    let ch = s.chars().next()?;
                    out.push(ch);
                    self.i = self.i.checked_sub(1)?.checked_add(ch.len_utf8())?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::sink::render_jsonl;

    #[test]
    fn round_trips_rendered_events() {
        let e = Event::new("watchdog.stall")
            .chain(2)
            .step(700)
            .f64("acceptance_rate", 0.015)
            .u64("attempt", 1)
            .bool("restarted", false)
            .str("note", "quote\" slash\\ nl\n done");
        let line = render_jsonl(&e);
        let p = parse_line(&line).unwrap();
        assert_eq!(p.name, "watchdog.stall");
        assert_eq!(p.chain, Some(2));
        assert_eq!(p.step, Some(700));
        assert_eq!(p.num("acceptance_rate"), Some(0.015));
        assert_eq!(p.num("attempt"), Some(1.0));
        assert_eq!(p.field("restarted"), Some(&TraceValue::Bool(false)));
        assert_eq!(
            p.field("note"),
            Some(&TraceValue::Str("quote\" slash\\ nl\n done".to_owned()))
        );
    }

    #[test]
    fn skips_garbage_lines_but_keeps_good_ones() {
        let text = "\n{\"event\":\"a\"}\nnot json\n{\"event\":\"b\",\"chain\":1}\n{\"nope\":1}\n";
        let events = parse_trace(text);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(events[1].chain, Some(1));
    }

    #[test]
    fn parses_unicode_and_nested_unknown_values() {
        let p = parse_line("{\"event\":\"τ\",\"fields\":{\"x\":1,\"y\":\"π\"}}").unwrap();
        assert_eq!(p.name, "τ");
        assert_eq!(p.num("x"), Some(1.0));
        assert_eq!(p.field("y"), Some(&TraceValue::Str("π".to_owned())));
    }

    #[test]
    fn rejects_truncated_objects() {
        assert!(parse_line("{\"event\":\"a\"").is_none());
        assert!(parse_line("{\"event\":\"a\"} trailing").is_none());
        assert!(parse_line("").is_none());
    }

    #[test]
    fn round_trips_the_trace_coordinate() {
        let e = Event::new("serve.plan.start").trace(42).chain(1).step(10);
        let p = parse_line(&render_jsonl(&e)).unwrap();
        assert_eq!(p.trace, Some(42));
        assert_eq!(p.chain, Some(1));
        // Traces parsed from pre-v2 lines (no trace key) stay None.
        let old = parse_line("{\"event\":\"legacy\",\"chain\":3}").unwrap();
        assert_eq!(old.trace, None);
    }

    #[test]
    fn full_width_trace_ids_round_trip_exactly() {
        // Trace ids are 64-bit hashes; every bit matters for joining
        // `plan_trace` fields against `trace` coordinates. 2^53-rounding
        // through f64 must never happen.
        let id = 0x1a29_dae1_e81f_c793_u64; // needs >53 bits
        let e = Event::new("serve.query.planned")
            .trace(id)
            .u64("plan_trace", id)
            .u64("query", 3);
        let p = parse_line(&render_jsonl(&e)).unwrap();
        assert_eq!(p.trace, Some(id));
        assert_eq!(p.uint("plan_trace"), Some(id));
        assert_eq!(p.uint("query"), Some(3));
        assert_eq!(p.num("query"), Some(3.0), "f64 view still works");
        assert_eq!(p.uint("missing"), None);
    }

    #[test]
    fn recovers_from_a_truncated_final_line() {
        // A killed run tears the last line mid-object; every line
        // before the tear must still parse.
        let mut text = String::new();
        for i in 0..5u64 {
            text.push_str(&render_jsonl(
                &Event::new("sample").trace(9).chain(0).step(i),
            ));
            text.push('\n');
        }
        let torn = render_jsonl(&Event::new("sample").trace(9).chain(0).step(5));
        text.push_str(&torn[..torn.len() / 2]);
        let events = parse_trace(&text);
        assert_eq!(events.len(), 5, "intact prefix survives the torn tail");
        assert!(events.iter().all(|e| e.trace == Some(9)));
    }

    #[test]
    fn recovers_interleaved_chain_streams() {
        // Lines from two chains (distinct traces) interleaved at the
        // file level: parsing keeps every event and the per-chain
        // sub-streams re-separate cleanly by coordinate.
        let mut text = String::new();
        for step in 0..4u64 {
            for chain in 0..2u64 {
                let e = Event::new("sample")
                    .trace(100 + chain)
                    .chain(chain)
                    .step(step);
                text.push_str(&render_jsonl(&e));
                text.push('\n');
            }
        }
        let events = parse_trace(&text);
        assert_eq!(events.len(), 8);
        for chain in 0..2u64 {
            let steps: Vec<u64> = events
                .iter()
                .filter(|e| e.chain == Some(chain))
                .filter_map(|e| e.step)
                .collect();
            assert_eq!(steps, [0, 1, 2, 3], "chain {chain} stream is ordered");
            assert!(events
                .iter()
                .filter(|e| e.chain == Some(chain))
                .all(|e| e.trace == Some(100 + chain)));
        }
    }
}
