//! RAII span timers for phase profiling (burn-in, thinning, Fenwick
//! rebuild, checkpoint capture/resume, joint-Bayes sweeps).
//!
//! A span emits two *deterministic* events — `span.enter` on creation
//! and `span.exit` on drop, both carrying the phase name and the
//! logical `(chain, step)` coordinates — plus one nondeterministic
//! wall-clock duration on the [`crate::Recorder::timing`] channel.
//! Deterministic sinks keep the events and ignore the duration, so
//! traces stay byte-comparable while the stderr summary still shows
//! where the time went.

use crate::event::Event;
use crate::recorder::{current_chain, current_trace, enabled, with_recorder};
use std::time::Instant;

/// RAII phase timer. Construct via [`crate::span`] or
/// [`crate::chain_span`]; the phase closes when the value drops.
///
/// When no recorder is installed at construction time the span is
/// inert: no events, no clock read, no work on drop.
#[must_use = "a span records its phase when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    trace: Option<u64>,
    chain: Option<u64>,
    step: Option<u64>,
    start: Option<Instant>,
}

impl Span {
    // The wall-clock read feeds the timing channel only, never the
    // deterministic event stream, so replayability is unaffected.
    #[allow(clippy::disallowed_methods)]
    pub(crate) fn new(name: &'static str, chain: Option<u64>, step: Option<u64>) -> Self {
        if !enabled() {
            return Span {
                name,
                trace: None,
                chain: None,
                step: None,
                start: None,
            };
        }
        let trace = current_trace();
        let chain = chain.or_else(current_chain);
        let mut enter = Event::new("span.enter").str("span", name);
        enter.trace = trace;
        enter.chain = chain;
        enter.step = step;
        with_recorder(|r| r.event(&enter));
        Span {
            name,
            trace,
            chain,
            step,
            start: Some(Instant::now()),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut exit = Event::new("span.exit").str("span", self.name);
        exit.trace = self.trace;
        exit.chain = self.chain;
        exit.step = self.step;
        with_recorder(|r| {
            r.event(&exit);
            r.timing(self.name, nanos);
        });
    }
}
