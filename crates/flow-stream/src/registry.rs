//! Versioned model registry: atomic epoch snapshots and hot-swap into
//! the serving layer.
//!
//! **Snapshot atomicity.** Each sealed epoch persists the full learning
//! state as `epoch-NNNNNN.snap`, written to a temporary file and
//! `rename`d into place — readers only ever see complete files. Every
//! snapshot ends with an FNV-1a checksum line over everything above it;
//! a torn or bit-rotted file fails the checksum and
//! [`SnapshotStore::load_latest`] falls back to the newest intact
//! epoch. The `stream.swap_torn_write` fault point truncates the
//! rendered snapshot mid-file to drill exactly that path.
//!
//! **Hot-swap.** [`ModelRegistry::swap_into`] installs the current
//! serve fingerprint into a [`ServeEngine`]: cache entries keyed under
//! older fingerprints are invalidated eagerly, and because the engine
//! takes the model per batch, in-flight batches finish on the model
//! version they started with.
//!
//! The snapshot body is a line-oriented text format (like the
//! checkpoint and perf-baseline files elsewhere in the workspace):
//!
//! ```text
//! flowstream-snapshot v1
//! epoch=2
//! fingerprint=0123456789abcdef
//! timing=any_earlier
//! graph nodes=4 edges=4
//! e 0 1
//! b 3ff0000000000000 4000000000000000
//! s sink=3 parents=1,2 spont=0 uninf=1 rows=1
//! r ones=0 count=3 leaks=1
//! crc=9ab65f3c42d1e807
//! ```

use crate::delta::EpochDelta;
use crate::model::StreamModel;
use flow_core::{fault, FlowError, FlowResult, Fnv64};
use flow_graph::{graph::GraphBuilder, NodeId};
use flow_icm::BetaIcm;
use flow_learn::summary::{SinkSummary, SummaryRow, TimingAssumption};
use flow_serve::ServeEngine;
use flow_stats::dist::Beta;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// On-disk store of sealed-epoch snapshots.
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

fn corrupt(detail: impl Into<String>) -> FlowError {
    FlowError::Checkpoint {
        detail: detail.into(),
    }
}

fn io_err(e: std::io::Error) -> FlowError {
    FlowError::Io {
        detail: e.to_string(),
    }
}

fn timing_name(t: TimingAssumption) -> &'static str {
    match t {
        TimingAssumption::AnyEarlier => "any_earlier",
        TimingAssumption::PreviousStep => "previous_step",
    }
}

fn timing_of(name: &str) -> FlowResult<TimingAssumption> {
    match name {
        "any_earlier" => Ok(TimingAssumption::AnyEarlier),
        "previous_step" => Ok(TimingAssumption::PreviousStep),
        other => Err(corrupt(format!("unknown timing assumption `{other}`"))),
    }
}

/// Renders the snapshot body (everything above the `crc=` line).
fn render(model: &StreamModel) -> String {
    let mut out = String::new();
    let graph = model.graph();
    let _ = writeln!(out, "{}", flow_core::schema::STREAM_SNAPSHOT.line_header());
    let _ = writeln!(out, "epoch={}", model.epoch());
    let _ = writeln!(out, "fingerprint={:016x}", model.serve_fingerprint());
    let _ = writeln!(out, "timing={}", timing_name(model.timing()));
    let _ = writeln!(
        out,
        "graph nodes={} edges={}",
        graph.node_count(),
        graph.edge_count()
    );
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        let _ = writeln!(out, "e {} {}", u.0, v.0);
    }
    for b in model.beta().params() {
        let _ = writeln!(
            out,
            "b {:016x} {:016x}",
            b.alpha().to_bits(),
            b.beta().to_bits()
        );
    }
    for s in model.summaries() {
        let parents = s
            .parents
            .iter()
            .map(|p| p.0.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "s sink={} parents={} spont={} uninf={} rows={}",
            s.sink.0,
            parents,
            s.skipped_spontaneous,
            s.skipped_uninformative,
            s.rows.len()
        );
        for row in &s.rows {
            let ones = row
                .characteristic
                .iter_ones()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                out,
                "r ones={} count={} leaks={}",
                ones, row.count, row.leaks
            );
        }
    }
    out
}

fn checksum(body: &str) -> u64 {
    Fnv64::new().bytes(body.as_bytes()).finish()
}

/// Splits `key=value`, requiring `key`.
fn kv<'a>(token: &'a str, key: &str) -> FlowResult<&'a str> {
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| corrupt(format!("expected `{key}=…`, found `{token}`")))
}

fn parse_u64(s: &str, what: &str) -> FlowResult<u64> {
    s.parse::<u64>()
        .map_err(|_| corrupt(format!("bad {what} `{s}`")))
}

fn parse_bits(s: &str, what: &str) -> FlowResult<f64> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| corrupt(format!("bad {what} bits `{s}`")))
}

/// Parses a comma-separated id list; empty string = empty list.
fn parse_ids(s: &str, what: &str) -> FlowResult<Vec<u64>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|tok| parse_u64(tok, what)).collect()
}

/// Parses a verified snapshot body back into a model.
fn parse_snapshot(text: &str) -> FlowResult<StreamModel> {
    // The final line must be the checksum over everything before it.
    let Some(crc_at) = text.rfind("crc=") else {
        return Err(corrupt("snapshot is missing its crc line"));
    };
    let (body, crc_line) = text.split_at(crc_at);
    let stated = u64::from_str_radix(crc_line.trim_start_matches("crc=").trim(), 16)
        .map_err(|_| corrupt("unreadable crc line"))?;
    let actual = checksum(body);
    if stated != actual {
        return Err(corrupt(format!(
            "checksum mismatch: file says {stated:016x}, content hashes to {actual:016x}"
        )));
    }

    let mut lines = body.lines();
    if lines.next() != Some(flow_core::schema::STREAM_SNAPSHOT.line_header().as_str()) {
        return Err(corrupt("bad snapshot magic"));
    }
    let epoch = parse_u64(kv(lines.next().unwrap_or(""), "epoch")?, "epoch")?;
    // The stored serve fingerprint is advisory (recomputed on load).
    let _advisory_fingerprint = kv(lines.next().unwrap_or(""), "fingerprint")?;
    let timing = timing_of(kv(lines.next().unwrap_or(""), "timing")?)?;
    let graph_line = lines.next().unwrap_or("");
    let mut head = graph_line.split_whitespace();
    if head.next() != Some("graph") {
        return Err(corrupt(format!(
            "expected graph line, found `{graph_line}`"
        )));
    }
    let nodes = parse_u64(kv(head.next().unwrap_or(""), "nodes")?, "node count")? as usize;
    let edge_count = parse_u64(kv(head.next().unwrap_or(""), "edges")?, "edge count")? as usize;

    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let line = lines.next().unwrap_or("");
        let mut toks = line.split_whitespace();
        if toks.next() != Some("e") {
            return Err(corrupt(format!("expected edge line, found `{line}`")));
        }
        let u = parse_u64(toks.next().unwrap_or(""), "edge src")? as u32;
        let v = parse_u64(toks.next().unwrap_or(""), "edge dst")? as u32;
        edges.push((u, v));
    }
    // The checksum guards integrity, not validity: a hand-edited file
    // with a recomputed crc can still name impossible edges, so the
    // graph is built fallibly — never through the panicking fixture
    // constructor.
    let mut builder = GraphBuilder::new(nodes);
    for &(u, v) in &edges {
        builder
            .add_edge(NodeId(u), NodeId(v))
            .map_err(|e| corrupt(format!("invalid stored edge ({u},{v}): {e}")))?;
    }
    let graph = builder.build();

    let mut params = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let line = lines.next().unwrap_or("");
        let mut toks = line.split_whitespace();
        if toks.next() != Some("b") {
            return Err(corrupt(format!("expected beta line, found `{line}`")));
        }
        let a = parse_bits(toks.next().unwrap_or(""), "alpha")?;
        let b = parse_bits(toks.next().unwrap_or(""), "beta")?;
        params.push(Beta::try_new(a, b).map_err(|e| corrupt(format!("invalid stored Beta: {e}")))?);
    }
    let beta = BetaIcm::new(graph.clone(), params);

    let mut summaries = Vec::new();
    while let Some(line) = lines.next() {
        let mut toks = line.split_whitespace();
        if toks.next() != Some("s") {
            return Err(corrupt(format!("expected summary line, found `{line}`")));
        }
        let sink = parse_u64(kv(toks.next().unwrap_or(""), "sink")?, "sink")? as u32;
        let parents: Vec<NodeId> = parse_ids(kv(toks.next().unwrap_or(""), "parents")?, "parent")?
            .into_iter()
            .map(|p| NodeId(p as u32))
            .collect();
        let spont = parse_u64(kv(toks.next().unwrap_or(""), "spont")?, "spont counter")?;
        let uninf = parse_u64(kv(toks.next().unwrap_or(""), "uninf")?, "uninf counter")?;
        let nrows = parse_u64(kv(toks.next().unwrap_or(""), "rows")?, "row count")? as usize;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let line = lines.next().unwrap_or("");
            let mut toks = line.split_whitespace();
            if toks.next() != Some("r") {
                return Err(corrupt(format!("expected row line, found `{line}`")));
            }
            let ones = parse_ids(kv(toks.next().unwrap_or(""), "ones")?, "characteristic bit")?;
            let count = parse_u64(kv(toks.next().unwrap_or(""), "count")?, "row count")?;
            let leaks = parse_u64(kv(toks.next().unwrap_or(""), "leaks")?, "row leaks")?;
            if leaks > count {
                return Err(corrupt(format!("row has leaks {leaks} > count {count}")));
            }
            let mut characteristic = flow_graph::BitSet::new(parents.len());
            for one in ones {
                let bit = one as usize;
                if bit >= parents.len() {
                    return Err(corrupt(format!(
                        "characteristic bit {bit} out of range for {} parents",
                        parents.len()
                    )));
                }
                characteristic.set(bit, true);
            }
            rows.push(SummaryRow {
                characteristic,
                count,
                leaks,
            });
        }
        let mut summary = SinkSummary::from_rows(NodeId(sink), parents, rows);
        summary.skipped_spontaneous = spont;
        summary.skipped_uninformative = uninf;
        summaries.push(summary);
    }
    Ok(StreamModel::from_parts(beta, summaries, timing, epoch))
}

impl SnapshotStore {
    /// A store rooted at `dir` (created on first persist).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SnapshotStore { dir: dir.into() }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snapshot_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(format!("epoch-{epoch:06}.snap"))
    }

    /// Atomically persists `model` as its epoch's snapshot: render,
    /// checksum, write to `*.tmp`, rename into place.
    pub fn persist(&self, model: &StreamModel) -> FlowResult<PathBuf> {
        std::fs::create_dir_all(&self.dir).map_err(io_err)?;
        let body = render(model);
        let mut text = format!("{body}crc={:016x}\n", checksum(&body));
        // A torn write loses the file's tail — including the crc line —
        // which is exactly what the checksum must catch on load.
        if fault::fires("stream.swap_torn_write") {
            text.truncate(text.len() * 3 / 5);
        }
        let final_path = self.snapshot_path(model.epoch());
        let tmp_path = final_path.with_extension("snap.tmp");
        std::fs::write(&tmp_path, &text).map_err(io_err)?;
        std::fs::rename(&tmp_path, &final_path).map_err(io_err)?;
        Ok(final_path)
    }

    /// Loads and checksum-verifies one snapshot file.
    pub fn load(&self, path: &Path) -> FlowResult<StreamModel> {
        let text = std::fs::read_to_string(path).map_err(io_err)?;
        parse_snapshot(&text)
    }

    /// Loads the newest epoch that passes its checksum, skipping
    /// corrupt or torn snapshots. Returns `None` on an empty store.
    pub fn load_latest(&self) -> FlowResult<Option<(PathBuf, StreamModel)>> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(e)),
        };
        let mut snaps: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "snap")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("epoch-"))
            })
            .collect();
        snaps.sort();
        for path in snaps.into_iter().rev() {
            match self.load(&path) {
                Ok(model) => return Ok(Some((path, model))),
                Err(_) => {
                    flow_obs::counter("stream.snapshot_skipped", 1);
                    continue;
                }
            }
        }
        Ok(None)
    }
}

/// What one hot-swap did.
#[derive(Clone, Debug)]
pub struct SwapReport {
    /// Epoch of the installed model.
    pub epoch: u64,
    /// Serve fingerprint now embedded in cache keys.
    pub fingerprint: u64,
    /// Cache entries reclaimed because they referenced older models.
    pub invalidated: usize,
}

/// What sealing one epoch did.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Epoch number after the delta was applied.
    pub epoch: u64,
    /// Serve fingerprint of the updated model.
    pub fingerprint: u64,
    /// Where the snapshot landed (`None` when running store-less).
    pub snapshot: Option<PathBuf>,
}

/// The live model plus its optional snapshot store.
#[derive(Debug)]
pub struct ModelRegistry {
    model: StreamModel,
    store: Option<SnapshotStore>,
}

impl ModelRegistry {
    /// A registry serving `model`, persisting epochs into `store` when
    /// one is given.
    pub fn new(model: StreamModel, store: Option<SnapshotStore>) -> Self {
        ModelRegistry { model, store }
    }

    /// Resumes from the newest intact snapshot in `store`, or starts
    /// `fresh()` when the store is empty.
    pub fn recover(store: SnapshotStore, fresh: impl FnOnce() -> StreamModel) -> FlowResult<Self> {
        let model = match store.load_latest()? {
            Some((_, model)) => model,
            None => fresh(),
        };
        Ok(ModelRegistry {
            model,
            store: Some(store),
        })
    }

    /// The live model.
    pub fn model(&self) -> &StreamModel {
        &self.model
    }

    /// Applies one epoch's delta and persists the resulting snapshot.
    pub fn seal_epoch(&mut self, delta: &EpochDelta) -> FlowResult<EpochReport> {
        self.model.apply(delta)?;
        let snapshot = match &self.store {
            Some(store) => Some(store.persist(&self.model)?),
            None => None,
        };
        Ok(EpochReport {
            epoch: self.model.epoch(),
            fingerprint: self.model.serve_fingerprint(),
            snapshot,
        })
    }

    /// Hot-swaps the current model version into a serving engine:
    /// installs the fingerprint, eagerly reclaims cache entries keyed
    /// under older models, and — on a sharded engine — rebuilds only
    /// the shards whose sub-model actually changed, keeping the warm
    /// caches of untouched shards. In-flight batches are untouched —
    /// the engine takes its model per batch, so work that started on
    /// an older version completes on it.
    pub fn swap_into(&self, engine: &mut ServeEngine) -> SwapReport {
        let fingerprint = self.model.serve_fingerprint();
        let invalidated = engine.install_model_icm(&self.model.serving_icm());
        flow_obs::counter("stream.swaps", 1);
        flow_obs::event(|| {
            flow_obs::Event::new("stream.swap")
                .u64("epoch", self.model.epoch())
                .u64("fingerprint", fingerprint)
                .u64("invalidated", invalidated as u64)
        });
        SwapReport {
            epoch: self.model.epoch(),
            fingerprint,
            invalidated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{IngestConfig, Ingestor};
    use flow_graph::graph::graph_from_edges;
    use flow_learn::summary::TimingAssumption;

    fn diamond() -> flow_graph::DiGraph {
        graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    fn trained_model() -> StreamModel {
        let mut ing = Ingestor::with_graph(diamond(), IngestConfig::default());
        let lines = [
            r#"{"cascade": 1, "node": 0, "t": 0}"#,
            r#"{"cascade": 1, "node": 1, "t": 1, "parent": 0}"#,
            r#"{"cascade": 2, "node": 1, "t": 0}"#,
            r#"{"cascade": 2, "node": 3, "t": 2}"#,
        ];
        for (i, line) in lines.iter().enumerate() {
            ing.push_line(i + 1, line).unwrap();
        }
        let mut model = StreamModel::new(diamond(), TimingAssumption::AnyEarlier);
        model.apply(&ing.seal_epoch()).unwrap();
        model
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flow-stream-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshot_roundtrip_preserves_every_bit() {
        let dir = tmp_dir("roundtrip");
        let store = SnapshotStore::new(&dir);
        let model = trained_model();
        let path = store.persist(&model).unwrap();
        let loaded = store.load(&path).unwrap();
        assert_eq!(loaded.epoch(), model.epoch());
        assert_eq!(loaded.state_fingerprint(), model.state_fingerprint());
        assert_eq!(loaded.serve_fingerprint(), model.serve_fingerprint());
        // Persisting the loaded model reproduces the file byte-for-byte.
        let dir2 = tmp_dir("roundtrip2");
        let path2 = SnapshotStore::new(&dir2).persist(&loaded).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn corrupt_snapshot_fails_checksum_and_latest_falls_back() {
        let dir = tmp_dir("fallback");
        let store = SnapshotStore::new(&dir);
        let mut model = trained_model();
        let good = store.persist(&model).unwrap();
        model.apply(&EpochDelta::default()).unwrap();
        let newer = store.persist(&model).unwrap();
        assert_ne!(good, newer);
        // Flip a byte in the newer snapshot's body.
        let mut bytes = std::fs::read(&newer).unwrap();
        bytes[40] ^= 0x20;
        std::fs::write(&newer, &bytes).unwrap();
        let err = store.load(&newer).unwrap_err();
        assert!(matches!(err, FlowError::Checkpoint { .. }), "{err}");
        let (latest_path, latest) = store.load_latest().unwrap().unwrap();
        assert_eq!(latest_path, good);
        assert_eq!(latest.epoch(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_prefers_snapshot_over_fresh() {
        let dir = tmp_dir("recover");
        let store = SnapshotStore::new(&dir);
        let model = trained_model();
        store.persist(&model).unwrap();
        let reg = ModelRegistry::recover(SnapshotStore::new(&dir), || {
            StreamModel::new(diamond(), TimingAssumption::AnyEarlier)
        })
        .unwrap();
        assert_eq!(reg.model().epoch(), 1);
        assert_eq!(reg.model().state_fingerprint(), model.state_fingerprint());
        // Empty store → fresh model.
        let empty = tmp_dir("recover-empty");
        let reg = ModelRegistry::recover(SnapshotStore::new(&empty), || {
            StreamModel::new(diamond(), TimingAssumption::AnyEarlier)
        })
        .unwrap();
        assert_eq!(reg.model().epoch(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
