//! Per-epoch evidence deltas: open cascades sealed into the two
//! sufficient-statistic feeds the learners understand.
//!
//! While an epoch is open, events accumulate into per-cascade builders.
//! Sealing classifies each cascade:
//!
//! * **attributed** — every non-source activation carries a parent.
//!   The cascade becomes one [`AttributedRecord`] (`(Vi⊕, Vi, Ei)`,
//!   §II-A) feeding betaICM counting.
//! * **unattributed** — at least one later activation lacks a parent.
//!   The cascade degrades to an [`Episode`] of `(node, time)` pairs
//!   feeding the characteristic tables of §V-B. Partial attribution is
//!   deliberately *not* mixed into the attributed feed: a cascade with
//!   unexplained activations would violate [`AttributedRecord::validate`].

use flow_graph::{DiGraph, NodeId};
use flow_icm::AttributedRecord;
use flow_learn::summary::Episode;
use std::collections::BTreeMap;

/// One open cascade's accumulated activations.
///
/// Uses a [`BTreeMap`] keyed by node so membership checks are cheap and
/// iteration order is deterministic regardless of arrival order.
#[derive(Clone, Debug, Default)]
pub(crate) struct CascadeBuilder {
    /// node → (activation time, attributed parent).
    pub activations: BTreeMap<u32, (u32, Option<NodeId>)>,
}

impl CascadeBuilder {
    /// Activation time of `v` in this cascade, if recorded.
    pub fn time_of(&self, v: NodeId) -> Option<u32> {
        self.activations.get(&v.0).map(|&(t, _)| t)
    }

    /// Number of buffered activations.
    pub fn len(&self) -> usize {
        self.activations.len()
    }

    /// True iff every activation that lacks a parent occurred at the
    /// cascade's earliest time — i.e. the parentless activations are
    /// exactly the sources and everything else is explained.
    fn is_fully_attributed(&self) -> bool {
        let Some(min_t) = self.activations.values().map(|&(t, _)| t).min() else {
            return false;
        };
        self.activations
            .values()
            .all(|&(t, parent)| parent.is_some() || t == min_t)
    }

    /// Seals this cascade into evidence for `graph`.
    fn seal(&self, graph: &DiGraph) -> SealedCascade {
        if self.is_fully_attributed() {
            let mut sources = Vec::new();
            let mut nodes = Vec::new();
            let mut edges = Vec::new();
            for (&v, &(_, parent)) in &self.activations {
                let v = NodeId(v);
                match parent {
                    None => sources.push(v),
                    Some(p) => {
                        nodes.push(v);
                        // The ingestor only admits attributed events
                        // whose edge exists, so a miss here is a logic
                        // error, not a data error.
                        if let Some(e) = graph.find_edge(p, v) {
                            edges.push(e);
                        }
                    }
                }
            }
            let record = AttributedRecord::from_lists(graph, sources, &nodes, &edges);
            flow_core::debug_invariant!(
                record.validate(graph).is_ok(),
                "sealed attributed cascade fails evidence validation"
            );
            SealedCascade::Attributed(record)
        } else {
            let activations = self
                .activations
                .iter()
                .map(|(&v, &(t, _))| (NodeId(v), t))
                .collect();
            // Node keys are unique by construction, so `Episode::new`'s
            // duplicate check cannot trip.
            SealedCascade::Unattributed(Episode::new(activations))
        }
    }
}

/// A cascade after classification.
enum SealedCascade {
    Attributed(AttributedRecord),
    Unattributed(Episode),
}

/// The evidence accumulated over one epoch, ready for incremental
/// application to a [`crate::StreamModel`].
#[derive(Clone, Debug, Default)]
pub struct EpochDelta {
    /// Fully attributed cascades (betaICM counting feed).
    pub attributed: Vec<AttributedRecord>,
    /// Unattributed/partially attributed cascades (characteristic-table
    /// feed).
    pub episodes: Vec<Episode>,
    /// Events carried by the sealed cascades.
    pub events: u64,
}

impl EpochDelta {
    /// Number of cascades sealed into this delta.
    pub fn cascades(&self) -> usize {
        self.attributed.len() + self.episodes.len()
    }

    /// True when the delta carries no evidence.
    pub fn is_empty(&self) -> bool {
        self.attributed.is_empty() && self.episodes.is_empty()
    }

    /// Seals `open` cascades (in ascending cascade-id order, so the
    /// delta's record order is deterministic) into a delta.
    pub(crate) fn from_open(open: &BTreeMap<u64, CascadeBuilder>, graph: &DiGraph) -> Self {
        let mut delta = EpochDelta::default();
        for builder in open.values() {
            delta.events += builder.len() as u64;
            match builder.seal(graph) {
                SealedCascade::Attributed(r) => delta.attributed.push(r),
                SealedCascade::Unattributed(e) => delta.episodes.push(e),
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow_graph::graph::graph_from_edges;

    fn diamond() -> DiGraph {
        graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    fn builder(entries: &[(u32, u32, Option<u32>)]) -> CascadeBuilder {
        let mut b = CascadeBuilder::default();
        for &(v, t, p) in entries {
            b.activations.insert(v, (t, p.map(NodeId)));
        }
        b
    }

    #[test]
    fn fully_attributed_cascade_becomes_record() {
        let g = diamond();
        let b = builder(&[(0, 0, None), (1, 1, Some(0)), (3, 2, Some(1))]);
        let mut open = BTreeMap::new();
        open.insert(1u64, b);
        let delta = EpochDelta::from_open(&open, &g);
        assert_eq!(delta.attributed.len(), 1);
        assert!(delta.episodes.is_empty());
        assert_eq!(delta.events, 3);
        let r = &delta.attributed[0];
        assert_eq!(r.validate(&g), Ok(()));
        assert!(r.is_node_active(NodeId(3)));
        assert!(!r.is_node_active(NodeId(2)));
    }

    #[test]
    fn partial_attribution_degrades_to_episode() {
        let g = diamond();
        // Node 3 activates later with no parent: cannot be a source.
        let b = builder(&[(0, 0, None), (1, 1, Some(0)), (3, 2, None)]);
        let mut open = BTreeMap::new();
        open.insert(1u64, b);
        let delta = EpochDelta::from_open(&open, &g);
        assert!(delta.attributed.is_empty());
        assert_eq!(delta.episodes.len(), 1);
        assert_eq!(delta.episodes[0].activation_time(NodeId(3)), Some(2));
    }

    #[test]
    fn single_activation_counts_as_attributed_source() {
        let g = diamond();
        let mut open = BTreeMap::new();
        open.insert(5u64, builder(&[(2, 0, None)]));
        let delta = EpochDelta::from_open(&open, &g);
        assert_eq!(delta.attributed.len(), 1);
        assert_eq!(delta.cascades(), 1);
        assert!(!delta.is_empty());
    }

    #[test]
    fn multiple_sources_at_earliest_time_stay_attributed() {
        let g = diamond();
        let b = builder(&[(0, 0, None), (2, 0, None), (3, 1, Some(2))]);
        let mut open = BTreeMap::new();
        open.insert(1u64, b);
        let delta = EpochDelta::from_open(&open, &g);
        assert_eq!(delta.attributed.len(), 1);
        assert_eq!(delta.attributed[0].validate(&g), Ok(()));
    }
}
