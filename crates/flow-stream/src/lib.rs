//! Streaming evidence ingest, incremental learning, and versioned
//! model hot-swap into the serving layer.
//!
//! The batch pipeline elsewhere in this workspace trains once over a
//! full evidence set. This crate turns that into a stream:
//!
//! 1. **Ingest** ([`ingest`]) — a bounded, backpressured pipeline
//!    consumes JSONL cascade events ([`event`]): attributed
//!    edge-firings, tweet-text attributions (via `flow-twitter`), and
//!    plain activation-time records. Malformed, late, duplicate, or
//!    causally inconsistent events are dropped with typed
//!    [`flow_core::FlowError::RejectedEvent`] errors and
//!    `stream.reject` telemetry; a full buffer pushes back with the
//!    transient `Overloaded` error instead of dropping data.
//! 2. **Seal** ([`delta`]) — an epoch boundary classifies every open
//!    cascade into attributed records or unattributed episodes: one
//!    [`EpochDelta`].
//! 3. **Learn** ([`model`]) — deltas apply incrementally to a
//!    [`StreamModel`]: betaICM posterior counts for attributed
//!    evidence, characteristic-table merges for unattributed evidence.
//!    Incremental application is bit-identical to batch training on
//!    the union (property-tested below).
//! 4. **Swap** ([`registry`]) — each sealed epoch persists atomically
//!    (tmp+rename, FNV-1a checksum) and hot-swaps into a
//!    [`flow_serve::ServeEngine`]: stale cache entries are invalidated
//!    by fingerprint while in-flight batches finish on their version.
//!
//! See DESIGN.md §15 for the epoch lifecycle and the late/duplicate
//! event policy.

pub mod delta;
pub mod event;
pub mod ingest;
pub mod model;
pub mod registry;

pub use delta::EpochDelta;
pub use event::{parse_line, EventLine, GraphSpec, StreamEvent};
pub use ingest::{IngestConfig, IngestStats, Ingestor, Push};
pub use model::StreamModel;
pub use registry::{EpochReport, ModelRegistry, SnapshotStore, SwapReport};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use flow_graph::graph::graph_from_edges;
    use flow_graph::{DiGraph, NodeId};
    use flow_learn::summary::TimingAssumption;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A fixed 6-node test graph with enough fan-in for ambiguous rows.
    fn gadget() -> DiGraph {
        graph_from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (1, 4),
                (3, 5),
                (4, 5),
                (2, 5),
            ],
        )
    }

    /// Simulates `cascades` random cascades over the gadget graph and
    /// renders them as event-log lines. Roughly half the activations
    /// keep their attribution; the rest degrade to unattributed
    /// observations, so both statistic feeds see evidence.
    fn random_cascade_lines(seed: u64, cascades: u64) -> Vec<String> {
        let graph = gadget();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lines = Vec::new();
        for cascade in 1..=cascades {
            let attributed_cascade = rng.random_bool(0.5);
            let source = NodeId(rng.random_range(0..graph.node_count() as u32));
            let mut active: Vec<(NodeId, u32)> = vec![(source, 0)];
            lines.push(format!(
                r#"{{"cascade": {cascade}, "node": {}, "t": 0}}"#,
                source.0
            ));
            let mut frontier = vec![source];
            let mut t = 0u32;
            while let Some(u) = frontier.pop() {
                t += 1;
                for &e in graph.out_edges(u) {
                    let (_, v) = graph.endpoints(e);
                    if active.iter().any(|&(w, _)| w == v) || !rng.random_bool(0.6) {
                        continue;
                    }
                    active.push((v, t));
                    frontier.push(v);
                    if attributed_cascade {
                        lines.push(format!(
                            r#"{{"cascade": {cascade}, "node": {}, "t": {t}, "parent": {}}}"#,
                            v.0, u.0
                        ));
                    } else {
                        lines.push(format!(
                            r#"{{"cascade": {cascade}, "node": {}, "t": {t}}}"#,
                            v.0
                        ));
                    }
                }
            }
        }
        lines
    }

    /// Ingests whole cascades (split decisions happen at cascade
    /// granularity so both sides see identical evidence) and seals one
    /// delta per chunk.
    fn deltas_for(
        lines: &[String],
        epoch_of: impl Fn(u64) -> usize,
        epochs: usize,
    ) -> Vec<EpochDelta> {
        // Group lines by their cascade's epoch assignment; cascade ids
        // stay monotone within an ingestor by replaying groups in order.
        let mut out = Vec::new();
        for epoch in 0..epochs {
            let mut ing = Ingestor::with_graph(gadget(), IngestConfig::default());
            for (i, line) in lines.iter().enumerate() {
                let cascade: u64 = line
                    .split("\"cascade\": ")
                    .nth(1)
                    .and_then(|rest| rest.split(',').next())
                    .and_then(|tok| tok.trim().parse().ok())
                    .unwrap_or(0);
                if epoch_of(cascade) != epoch {
                    continue;
                }
                match ing.push_line(i + 1, line) {
                    Ok(_) => {}
                    Err(e) => panic!("line {} rejected: {e}", i + 1),
                }
            }
            out.push(ing.seal_epoch());
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 24,
            ..ProptestConfig::default()
        })]

        /// Tentpole property: applying random per-cascade splits of a
        /// random evidence stream epoch-by-epoch leaves the model
        /// bit-identical to one-shot batch application — Beta parameter
        /// bits, characteristic tables, served probabilities, and both
        /// fingerprints.
        #[test]
        fn incremental_is_bit_identical_to_batch(
            seed in 0u64..1_000,
            cascades in 1u64..24,
            epochs in 1usize..5,
        ) {
            let lines = random_cascade_lines(seed, cascades);
            let assignment: Vec<usize> = {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
                (0..=cascades).map(|_| rng.random_range(0..epochs)).collect()
            };

            let mut batch = StreamModel::new(gadget(), TimingAssumption::AnyEarlier);
            for d in deltas_for(&lines, |_| 0, 1) {
                batch.apply(&d).unwrap();
            }

            let mut incr = StreamModel::new(gadget(), TimingAssumption::AnyEarlier);
            for d in deltas_for(&lines, |c| assignment[c as usize], epochs) {
                incr.apply(&d).unwrap();
            }

            // betaICM counts, bit for bit.
            for (a, b) in incr.beta().params().iter().zip(batch.beta().params()) {
                prop_assert_eq!(a.alpha().to_bits(), b.alpha().to_bits());
                prop_assert_eq!(a.beta().to_bits(), b.beta().to_bits());
            }
            // Characteristic tables, row for row.
            prop_assert_eq!(incr.summaries().len(), batch.summaries().len());
            for (a, b) in incr.summaries().iter().zip(batch.summaries()) {
                prop_assert_eq!(a.sink, b.sink);
                prop_assert_eq!(&a.parents, &b.parents);
                prop_assert_eq!(&a.rows, &b.rows);
                prop_assert_eq!(a.skipped_spontaneous, b.skipped_spontaneous);
                prop_assert_eq!(a.skipped_uninformative, b.skipped_uninformative);
            }
            // Served probabilities and fingerprints.
            let (pi, pb) = (incr.serving_icm(), batch.serving_icm());
            for (x, y) in pi.probabilities().iter().zip(pb.probabilities()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            prop_assert_eq!(incr.serve_fingerprint(), batch.serve_fingerprint());
        }

        /// Snapshot persistence is faithful for arbitrary trained
        /// states: load(persist(m)) reproduces every statistic bit.
        #[test]
        fn snapshot_roundtrips_random_models(seed in 0u64..500, cascades in 1u64..16) {
            let lines = random_cascade_lines(seed, cascades);
            let mut model = StreamModel::new(gadget(), TimingAssumption::AnyEarlier);
            for d in deltas_for(&lines, |_| 0, 1) {
                model.apply(&d).unwrap();
            }
            let dir = std::env::temp_dir().join(format!(
                "flow-stream-prop-{}-{seed}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = SnapshotStore::new(&dir);
            let path = store.persist(&model).unwrap();
            let loaded = store.load(&path).unwrap();
            prop_assert_eq!(loaded.state_fingerprint(), model.state_fingerprint());
            prop_assert_eq!(loaded.serve_fingerprint(), model.serve_fingerprint());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
