//! The incrementally-learned stream model.
//!
//! A [`StreamModel`] holds both sufficient statistics the paper's
//! learners maintain, updated one [`EpochDelta`] at a time:
//!
//! * a [`BetaIcm`] absorbing attributed records via the §II-A counting
//!   rule ([`BetaIcm::absorb`]);
//! * one [`SinkSummary`] per sink with in-edges, extended by building a
//!   per-epoch table over the delta's episodes and
//!   [`SinkSummary::merge`]-ing it in.
//!
//! **Incremental ≡ batch, bit-for-bit.** Both statistics are exact
//! integer counts: Beta parameters move by `+1.0` per observation
//! (exact in f64 far below 2⁵³) and characteristic rows hold `u64`
//! counts, so applying deltas `b₁` then `b₂` leaves the model in the
//! same bit pattern as one-shot training on `b₁ ∪ b₂`. The property
//! test in this crate and the `serve_model_equivalence` proptest pin
//! this down over random cascade splits.

use crate::delta::EpochDelta;
use flow_core::{FlowResult, Fnv64};
use flow_graph::{DiGraph, NodeId};
use flow_icm::{model_fingerprint, BetaIcm, Icm};
use flow_learn::summary::{SinkSummary, TimingAssumption};
use flow_stats::dist::Beta;

/// Sufficient statistics for serving, maintained incrementally.
#[derive(Clone, Debug)]
pub struct StreamModel {
    beta: BetaIcm,
    /// One summary per sink with at least one in-edge, in node-id
    /// order; `parents` follow the sink's `in_edges` order so the
    /// characteristic bit layout is reproducible.
    summaries: Vec<SinkSummary>,
    timing: TimingAssumption,
    epoch: u64,
}

/// The candidate parents of `sink`: its in-neighbours, in in-edge
/// order (the characteristic bit order used everywhere downstream).
fn in_parents(graph: &DiGraph, sink: NodeId) -> Vec<NodeId> {
    graph
        .in_edges(sink)
        .iter()
        .map(|&e| graph.endpoints(e).0)
        .collect()
}

impl StreamModel {
    /// An untrained model over `graph`: uniform-prior Betas and empty
    /// characteristic tables.
    pub fn new(graph: DiGraph, timing: TimingAssumption) -> Self {
        let summaries = (0..graph.node_count())
            .map(|v| NodeId(v as u32))
            .filter(|&v| !graph.in_edges(v).is_empty())
            .map(|sink| SinkSummary::from_rows(sink, in_parents(&graph, sink), Vec::new()))
            .collect();
        StreamModel {
            beta: BetaIcm::uniform_prior(graph),
            summaries,
            timing,
            epoch: 0,
        }
    }

    /// Rebuilds a model from persisted parts (snapshot load path).
    pub(crate) fn from_parts(
        beta: BetaIcm,
        summaries: Vec<SinkSummary>,
        timing: TimingAssumption,
        epoch: u64,
    ) -> Self {
        StreamModel {
            beta,
            summaries,
            timing,
            epoch,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        self.beta.graph()
    }

    /// The attributed-evidence posterior.
    pub fn beta(&self) -> &BetaIcm {
        &self.beta
    }

    /// The per-sink characteristic tables.
    pub fn summaries(&self) -> &[SinkSummary] {
        &self.summaries
    }

    /// The timing assumption unattributed evidence is summarized under.
    pub fn timing(&self) -> TimingAssumption {
        self.timing
    }

    /// Number of epochs applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Folds one epoch's evidence into the statistics. Attributed
    /// records update the Beta posteriors; episodes extend every sink's
    /// characteristic table. Each call advances [`Self::epoch`] even
    /// when the delta is empty, so snapshot names stay in lockstep with
    /// seal count.
    pub fn apply(&mut self, delta: &EpochDelta) -> FlowResult<()> {
        for record in &delta.attributed {
            self.beta.absorb(record);
        }
        if !delta.episodes.is_empty() {
            for summary in &mut self.summaries {
                let built = SinkSummary::build(
                    summary.sink,
                    summary.parents.clone(),
                    &delta.episodes,
                    self.timing,
                );
                summary.merge(&built)?;
            }
        }
        self.epoch += 1;
        Ok(())
    }

    /// The point-probability model served to queries: per edge, the
    /// attributed Beta posterior augmented with the **filtered**
    /// unattributed evidence of §V-C — every unambiguous row adds its
    /// leaks to α and its non-leaks to β. Ambiguous rows are ignored,
    /// keeping the update exact (integer counts) and therefore
    /// order-independent: incremental and batch training serve the
    /// same bits.
    pub fn serving_icm(&self) -> Icm {
        let graph = self.beta.graph().clone();
        let mut probs: Vec<f64> = self.beta.params().iter().map(Beta::mean).collect();
        for summary in &self.summaries {
            let width = summary.parents.len();
            let mut leaks = vec![0u64; width];
            let mut misses = vec![0u64; width];
            for row in summary.rows.iter().filter(|r| r.is_unambiguous()) {
                let Some(b) = row.characteristic.iter_ones().next() else {
                    continue;
                };
                leaks[b] += row.leaks;
                misses[b] += row.count - row.leaks;
            }
            for (b, &parent) in summary.parents.iter().enumerate() {
                if leaks[b] == 0 && misses[b] == 0 {
                    continue;
                }
                let Some(e) = graph.find_edge(parent, summary.sink) else {
                    continue;
                };
                let prior = self.beta.edge_beta(e);
                // One exact integer-valued add per side keeps the
                // result independent of how epochs were split.
                let a = prior.alpha() + leaks[b] as f64;
                let bb = prior.beta() + misses[b] as f64;
                let p = a / (a + bb);
                debug_assert!(
                    (0.0..=1.0).contains(&p),
                    "blended mean {p} out of [0, 1] (a={a}, b={bb})"
                );
                probs[e.index()] = p;
            }
        }
        Icm::new(graph, probs)
    }

    /// Fingerprint of the model *as served*: what cache keys embed.
    pub fn serve_fingerprint(&self) -> u64 {
        model_fingerprint(&self.serving_icm())
    }

    /// Fingerprint of the full learning state (posteriors, tables,
    /// skip counters, epoch) — changes whenever any statistic does,
    /// even if the served probabilities round to the same bits.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new()
            .u64(self.epoch)
            .u64(self.graph().node_count() as u64)
            .u64(self.graph().edge_count() as u64);
        for b in self.beta.params() {
            h = h.u64(b.alpha().to_bits()).u64(b.beta().to_bits());
        }
        for s in &self.summaries {
            h = h
                .u64(u64::from(s.sink.0))
                .u64(s.skipped_spontaneous)
                .u64(s.skipped_uninformative);
            for row in &s.rows {
                for one in row.characteristic.iter_ones() {
                    h = h.u64(one as u64);
                }
                h = h.u64(row.count).u64(row.leaks);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{IngestConfig, Ingestor, Push};
    use flow_graph::graph::graph_from_edges;

    fn diamond() -> DiGraph {
        graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    fn delta_from(lines: &[&str]) -> EpochDelta {
        let mut ing = Ingestor::with_graph(diamond(), IngestConfig::default());
        for (i, line) in lines.iter().enumerate() {
            match ing.push_line(i + 1, line) {
                Ok(Push::Accepted | Push::Skipped) => {}
                other => panic!("line {}: unexpected {other:?}", i + 1),
            }
        }
        ing.seal_epoch()
    }

    #[test]
    fn attributed_delta_moves_the_posterior() {
        let mut model = StreamModel::new(diamond(), TimingAssumption::AnyEarlier);
        let before = model.serve_fingerprint();
        let delta = delta_from(&[
            r#"{"cascade": 1, "node": 0, "t": 0}"#,
            r#"{"cascade": 1, "node": 1, "t": 1, "parent": 0}"#,
        ]);
        model.apply(&delta).unwrap();
        assert_eq!(model.epoch(), 1);
        // Edge 0→1 fired: α grows; 0→2 was exposed and did not: β grows.
        let g = model.graph().clone();
        let e01 = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e02 = g.find_edge(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(model.beta().edge_beta(e01).alpha(), 2.0);
        assert_eq!(model.beta().edge_beta(e02).beta(), 2.0);
        assert_ne!(model.serve_fingerprint(), before);
    }

    #[test]
    fn unattributed_delta_fills_tables_and_serving_model() {
        let mut model = StreamModel::new(diamond(), TimingAssumption::AnyEarlier);
        // Node 1 active before node 3; node 2 never active → the row for
        // sink 3 is unambiguous on parent 1, with a leak.
        let delta = delta_from(&[
            r#"{"cascade": 1, "node": 1, "t": 0}"#,
            r#"{"cascade": 1, "node": 3, "t": 2}"#,
        ]);
        model.apply(&delta).unwrap();
        let sink3 = model
            .summaries()
            .iter()
            .find(|s| s.sink == NodeId(3))
            .unwrap();
        assert_eq!(sink3.total_observations(), 1);
        let icm = model.serving_icm();
        let g = model.graph();
        let e13 = g.find_edge(NodeId(1), NodeId(3)).unwrap();
        let e23 = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        // Unambiguous leak on 1→3: Beta(1+1, 1) → 2/3. 2→3 untouched.
        assert_eq!(icm.probabilities()[e13.index()], 2.0 / 3.0);
        assert_eq!(icm.probabilities()[e23.index()], 0.5);
    }

    #[test]
    fn incremental_split_matches_one_shot_batch() {
        let lines = [
            r#"{"cascade": 1, "node": 0, "t": 0}"#,
            r#"{"cascade": 1, "node": 1, "t": 1, "parent": 0}"#,
            r#"{"cascade": 1, "node": 3, "t": 2, "parent": 1}"#,
            r#"{"cascade": 2, "node": 0, "t": 0}"#,
            r#"{"cascade": 2, "node": 2, "t": 1, "parent": 0}"#,
            r#"{"cascade": 3, "node": 1, "t": 0}"#,
            r#"{"cascade": 3, "node": 3, "t": 1}"#,
            r#"{"cascade": 4, "node": 2, "t": 0}"#,
            r#"{"cascade": 4, "node": 3, "t": 3}"#,
        ];
        // One model sees everything in one epoch…
        let mut batch = StreamModel::new(diamond(), TimingAssumption::AnyEarlier);
        batch.apply(&delta_from(&lines)).unwrap();
        // …the other sees the same cascades over three epochs.
        let mut incr = StreamModel::new(diamond(), TimingAssumption::AnyEarlier);
        incr.apply(&delta_from(&lines[0..3])).unwrap();
        incr.apply(&delta_from(&lines[3..7])).unwrap();
        incr.apply(&delta_from(&lines[7..9])).unwrap();
        assert_eq!(incr.epoch(), 3);
        for (a, b) in incr.beta().params().iter().zip(batch.beta().params()) {
            assert_eq!(a.alpha().to_bits(), b.alpha().to_bits());
            assert_eq!(a.beta().to_bits(), b.beta().to_bits());
        }
        let (pa, pb) = (incr.serving_icm(), batch.serving_icm());
        for (x, y) in pa.probabilities().iter().zip(pb.probabilities()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(incr.serve_fingerprint(), batch.serve_fingerprint());
    }

    #[test]
    fn state_fingerprint_sees_what_serving_fingerprint_misses() {
        let mut a = StreamModel::new(diamond(), TimingAssumption::AnyEarlier);
        let mut b = a.clone();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        // An empty epoch changes no statistic but advances the epoch
        // counter: state fingerprint moves, served model does not.
        b.apply(&EpochDelta::default()).unwrap();
        assert_eq!(a.serve_fingerprint(), b.serve_fingerprint());
        assert_ne!(a.state_fingerprint(), b.state_fingerprint());
        a.apply(&EpochDelta::default()).unwrap();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }
}
