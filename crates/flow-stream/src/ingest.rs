//! Bounded, backpressured streaming ingest.
//!
//! An [`Ingestor`] consumes event-log lines ([`crate::event`]), validates
//! each against the stream's graph and the current cascade state, and
//! buffers accepted activations into open cascades. Sealing an epoch
//! drains every open cascade into an [`EpochDelta`].
//!
//! **Backpressure.** The buffer is bounded by
//! [`IngestConfig::max_pending_events`]. When full, event lines are
//! refused with the transient [`FlowError::Overloaded`] — the event is
//! *not* consumed and *not* counted as rejected; the caller seals an
//! epoch (draining the buffer) and retries. Seal markers, comments, and
//! the header are always admitted, so the pipeline can always drain.
//!
//! **Rejection policy.** Invalid events are dropped one at a time with
//! the typed [`FlowError::RejectedEvent`] and a `stream.reject` obs
//! event; the stream itself keeps flowing. Reasons:
//!
//! * `malformed` — unparseable JSON, missing fields, unresolvable
//!   retweet ancestor, or a corrupted line (the `stream.event_corrupt`
//!   fault point injects this);
//! * `late` — the event names a cascade at or below the sealed
//!   watermark (cascade ids are monotone at first appearance; once an
//!   epoch seals, everything sealed is immutable);
//! * `duplicate` — the cascade already holds an activation for the
//!   node (ICM nodes activate at most once per object);
//! * `inconsistent` — the node is outside the graph, the attributed
//!   parent has no edge to the node, or the parent is not already
//!   active strictly earlier in the cascade.

use crate::delta::{CascadeBuilder, EpochDelta};
use crate::event::{parse_line, EventLine, StreamEvent};
use flow_core::{fault, FlowError, FlowResult};
use flow_graph::DiGraph;
use std::collections::BTreeMap;

/// Ingest tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Maximum buffered activations across all open cascades before
    /// event lines are refused with [`FlowError::Overloaded`].
    pub max_pending_events: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            max_pending_events: 65_536,
        }
    }
}

/// Counters accumulated over the ingestor's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestStats {
    /// Events accepted into open cascades.
    pub accepted: u64,
    /// Events dropped with a typed rejection.
    pub rejected: u64,
    /// …of which: unparseable/corrupt lines.
    pub rejected_malformed: u64,
    /// …of which: events for already-sealed cascades.
    pub rejected_late: u64,
    /// …of which: repeated activations.
    pub rejected_duplicate: u64,
    /// …of which: graph/causality violations.
    pub rejected_inconsistent: u64,
    /// Event lines refused (not consumed) by backpressure.
    pub backpressured: u64,
    /// Epochs sealed.
    pub epochs_sealed: u64,
}

/// What one consumed line did.
#[derive(Clone, Debug)]
pub enum Push {
    /// An activation was buffered into an open cascade.
    Accepted,
    /// A seal marker closed the epoch; here is its delta.
    Sealed(EpochDelta),
    /// A comment, blank line, or (first) graph header.
    Skipped,
}

/// The bounded streaming ingest pipeline.
#[derive(Debug)]
pub struct Ingestor {
    graph: Option<DiGraph>,
    config: IngestConfig,
    open: BTreeMap<u64, CascadeBuilder>,
    pending_events: usize,
    /// Highest cascade id sealed into a past epoch; events at or below
    /// it are late.
    watermark: Option<u64>,
    stats: IngestStats,
}

impl Ingestor {
    /// An ingestor that expects the graph header as the first
    /// non-comment line of the log.
    pub fn new(config: IngestConfig) -> Self {
        Ingestor {
            graph: None,
            config,
            open: BTreeMap::new(),
            pending_events: 0,
            watermark: None,
            stats: IngestStats::default(),
        }
    }

    /// An ingestor over an already-known graph; a header line in the
    /// log must then match-or-absent (a second header is rejected).
    pub fn with_graph(graph: DiGraph, config: IngestConfig) -> Self {
        let mut i = Ingestor::new(config);
        i.graph = Some(graph);
        i
    }

    /// The stream's graph, once known.
    pub fn graph(&self) -> Option<&DiGraph> {
        self.graph.as_ref()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Activations currently buffered in open cascades.
    pub fn pending_events(&self) -> usize {
        self.pending_events
    }

    /// Open (unsealed) cascades.
    pub fn open_cascades(&self) -> usize {
        self.open.len()
    }

    fn reject(&mut self, line: usize, reason: &'static str, detail: String) -> FlowResult<Push> {
        self.stats.rejected += 1;
        match reason {
            "malformed" => self.stats.rejected_malformed += 1,
            "late" => self.stats.rejected_late += 1,
            "duplicate" => self.stats.rejected_duplicate += 1,
            _ => self.stats.rejected_inconsistent += 1,
        }
        flow_obs::counter("stream.rejected", 1);
        flow_obs::event(|| {
            flow_obs::Event::new("stream.reject")
                .u64("line", line as u64)
                .str("reason", reason)
        });
        Err(FlowError::RejectedEvent {
            line,
            reason,
            detail,
        })
    }

    /// Consumes one raw log line (1-based `line` for diagnostics).
    ///
    /// Returns [`FlowError::Overloaded`] without consuming the line
    /// when the event buffer is full — seal an epoch and retry — and
    /// [`FlowError::RejectedEvent`] when the line was consumed but
    /// dropped.
    pub fn push_line(&mut self, line: usize, raw: &str) -> FlowResult<Push> {
        // The corruption fault point mangles the wire bytes before any
        // parsing, as a torn read would.
        let mangled;
        let raw = if fault::fires("stream.event_corrupt") {
            mangled = format!("{}\u{fffd}", &raw[..raw.len() / 2]);
            &mangled
        } else {
            raw
        };
        let parsed = match parse_line(raw) {
            Ok(p) => p,
            Err(detail) => return self.reject(line, "malformed", detail),
        };
        match parsed {
            EventLine::Skip => Ok(Push::Skipped),
            EventLine::Graph(spec) => {
                if self.graph.is_some() {
                    return self.reject(line, "malformed", "duplicate graph header".into());
                }
                self.graph = Some(spec.to_graph());
                Ok(Push::Skipped)
            }
            EventLine::Seal => Ok(Push::Sealed(self.seal_epoch())),
            EventLine::Event(event) => {
                if self.graph.is_none() {
                    return self.reject(line, "malformed", "event before the graph header".into());
                };
                if self.pending_events >= self.config.max_pending_events {
                    self.stats.backpressured += 1;
                    return Err(FlowError::Overloaded {
                        detail: format!(
                            "ingest buffer full ({} pending events); seal an epoch to drain",
                            self.pending_events
                        ),
                        retry_after_ms: 1,
                    });
                }
                self.push_event(line, event)
            }
        }
    }

    fn push_event(&mut self, line: usize, event: StreamEvent) -> FlowResult<Push> {
        // Unwrap-free graph access: push_line established it is Some.
        let Some(graph) = self.graph.clone() else {
            return self.reject(line, "malformed", "event before the graph header".into());
        };
        if event.node.index() >= graph.node_count() {
            return self.reject(
                line,
                "inconsistent",
                format!(
                    "node {} outside the {}-node graph",
                    event.node,
                    graph.node_count()
                ),
            );
        }
        if self.watermark.is_some_and(|w| event.cascade <= w) {
            return self.reject(
                line,
                "late",
                format!("cascade {} was sealed into a previous epoch", event.cascade),
            );
        }
        let builder = self.open.entry(event.cascade).or_default();
        if builder.time_of(event.node).is_some() {
            let detail = format!(
                "node {} already active in cascade {}",
                event.node, event.cascade
            );
            // Drop the just-created empty builder before rejecting, so
            // a rejected first event never leaves a phantom cascade.
            if self.open.get(&event.cascade).is_some_and(|b| b.len() == 0) {
                self.open.remove(&event.cascade); // flow-analyze: allow(L8: BTreeMap::remove returns an Option, not a Result; the empty builder is discarded by design)
            }
            return self.reject(line, "duplicate", detail);
        }
        if let Some(parent) = event.parent {
            let edge_ok = graph.find_edge(parent, event.node).is_some();
            let parent_earlier = builder.time_of(parent).is_some_and(|tp| tp < event.t);
            if !edge_ok || !parent_earlier {
                let detail = if !edge_ok {
                    format!("no edge {} -> {} in the graph", parent, event.node)
                } else {
                    format!(
                        "parent {} is not active strictly before t={} in cascade {}",
                        parent, event.t, event.cascade
                    )
                };
                if self.open.get(&event.cascade).is_some_and(|b| b.len() == 0) {
                    self.open.remove(&event.cascade); // flow-analyze: allow(L8: BTreeMap::remove returns an Option, not a Result; the empty builder is discarded by design)
                }
                return self.reject(line, "inconsistent", detail);
            }
        }
        let builder = self.open.entry(event.cascade).or_default();
        builder
            .activations
            .insert(event.node.0, (event.t, event.parent));
        self.pending_events += 1;
        self.stats.accepted += 1;
        flow_obs::counter("stream.events", 1);
        flow_obs::event(|| {
            flow_obs::Event::new("stream.ingest")
                .u64("cascade", event.cascade)
                .u64("node", u64::from(event.node.0))
                .bool("attributed", event.parent.is_some())
        });
        Ok(Push::Accepted)
    }

    /// Closes every open cascade into a delta, advances the late-event
    /// watermark, and empties the buffer. Sealing with nothing open
    /// yields an empty delta (callers usually skip those).
    pub fn seal_epoch(&mut self) -> EpochDelta {
        let delta = match &self.graph {
            Some(graph) => EpochDelta::from_open(&self.open, graph),
            None => EpochDelta::default(),
        };
        if let Some(&last) = self.open.keys().next_back() {
            self.watermark = Some(self.watermark.map_or(last, |w| w.max(last)));
        }
        self.open.clear();
        self.pending_events = 0;
        self.stats.epochs_sealed += 1;
        flow_obs::event(|| {
            flow_obs::Event::new("stream.epoch_sealed")
                .u64("cascades", delta.cascades() as u64)
                .u64("attributed", delta.attributed.len() as u64)
                .u64("unattributed", delta.episodes.len() as u64)
                .u64("events", delta.events)
        });
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flow_graph::graph::graph_from_edges;

    fn diamond() -> DiGraph {
        graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    fn ingestor() -> Ingestor {
        Ingestor::with_graph(diamond(), IngestConfig::default())
    }

    #[test]
    fn accepts_and_seals_a_cascade() {
        let mut ing = ingestor();
        assert!(matches!(
            ing.push_line(1, r#"{"cascade": 1, "node": 0, "t": 0}"#),
            Ok(Push::Accepted)
        ));
        assert!(matches!(
            ing.push_line(2, r#"{"cascade": 1, "node": 1, "t": 1, "parent": 0}"#),
            Ok(Push::Accepted)
        ));
        assert_eq!(ing.pending_events(), 2);
        let delta = ing.seal_epoch();
        assert_eq!(delta.attributed.len(), 1);
        assert_eq!(ing.pending_events(), 0);
        assert_eq!(ing.stats().accepted, 2);
        assert_eq!(ing.stats().epochs_sealed, 1);
    }

    #[test]
    fn header_line_builds_the_graph() {
        let mut ing = Ingestor::new(IngestConfig::default());
        let err = ing
            .push_line(1, r#"{"cascade": 1, "node": 0, "t": 0}"#)
            .unwrap_err();
        assert!(matches!(
            err,
            FlowError::RejectedEvent {
                reason: "malformed",
                ..
            }
        ));
        assert!(matches!(
            ing.push_line(2, r#"{"graph": {"nodes": 4, "edges": [[0,1]]}}"#),
            Ok(Push::Skipped)
        ));
        assert_eq!(ing.graph().map(|g| g.node_count()), Some(4));
        // A second header is malformed.
        assert!(ing
            .push_line(3, r#"{"graph": {"nodes": 4, "edges": [[0,1]]}}"#)
            .is_err());
    }

    #[test]
    fn duplicate_activation_is_rejected() {
        let mut ing = ingestor();
        ing.push_line(1, r#"{"cascade": 1, "node": 0, "t": 0}"#)
            .unwrap();
        let err = ing
            .push_line(2, r#"{"cascade": 1, "node": 0, "t": 5}"#)
            .unwrap_err();
        assert!(matches!(
            err,
            FlowError::RejectedEvent {
                line: 2,
                reason: "duplicate",
                ..
            }
        ));
        assert_eq!(ing.stats().rejected_duplicate, 1);
        assert_eq!(ing.pending_events(), 1);
    }

    #[test]
    fn late_event_after_seal_is_rejected() {
        let mut ing = ingestor();
        ing.push_line(1, r#"{"cascade": 3, "node": 0, "t": 0}"#)
            .unwrap();
        ing.seal_epoch();
        for cascade in [1, 3] {
            let err = ing
                .push_line(
                    2,
                    &format!(r#"{{"cascade": {cascade}, "node": 1, "t": 0}}"#),
                )
                .unwrap_err();
            assert!(
                matches!(err, FlowError::RejectedEvent { reason: "late", .. }),
                "cascade {cascade}: {err}"
            );
        }
        // A fresh cascade above the watermark is fine.
        assert!(matches!(
            ing.push_line(3, r#"{"cascade": 4, "node": 1, "t": 0}"#),
            Ok(Push::Accepted)
        ));
        assert_eq!(ing.stats().rejected_late, 2);
    }

    #[test]
    fn inconsistent_events_are_rejected() {
        let mut ing = ingestor();
        // Node outside the graph.
        assert!(ing
            .push_line(1, r#"{"cascade": 1, "node": 99, "t": 0}"#)
            .is_err());
        // Parent without an edge.
        ing.push_line(2, r#"{"cascade": 1, "node": 1, "t": 0}"#)
            .unwrap();
        assert!(ing
            .push_line(3, r#"{"cascade": 1, "node": 2, "t": 1, "parent": 1}"#)
            .is_err());
        // Parent not yet active.
        assert!(ing
            .push_line(4, r#"{"cascade": 1, "node": 3, "t": 1, "parent": 2}"#)
            .is_err());
        // Parent active but not strictly earlier.
        ing.push_line(5, r#"{"cascade": 2, "node": 0, "t": 3}"#)
            .unwrap();
        assert!(ing
            .push_line(6, r#"{"cascade": 2, "node": 1, "t": 3, "parent": 0}"#)
            .is_err());
        assert_eq!(ing.stats().rejected_inconsistent, 4);
    }

    #[test]
    fn backpressure_refuses_without_consuming() {
        let mut ing = Ingestor::with_graph(
            diamond(),
            IngestConfig {
                max_pending_events: 2,
            },
        );
        ing.push_line(1, r#"{"cascade": 1, "node": 0, "t": 0}"#)
            .unwrap();
        ing.push_line(2, r#"{"cascade": 1, "node": 1, "t": 1}"#)
            .unwrap();
        let err = ing
            .push_line(3, r#"{"cascade": 1, "node": 2, "t": 1}"#)
            .unwrap_err();
        assert!(matches!(err, FlowError::Overloaded { .. }));
        assert!(err.is_transient());
        assert_eq!(ing.stats().backpressured, 1);
        assert_eq!(ing.stats().rejected, 0, "backpressure is not a rejection");
        // Seal drains; the same line is then admitted (as a new cascade
        // would be late, the caller seals then replays in-epoch lines —
        // here cascade 1 was sealed, so replay uses cascade 2).
        ing.seal_epoch();
        assert!(matches!(
            ing.push_line(3, r#"{"cascade": 2, "node": 2, "t": 1}"#),
            Ok(Push::Accepted)
        ));
        // Seal markers are always admitted even at capacity.
        let full = ing.push_line(4, r#"{"seal": true}"#);
        assert!(matches!(full, Ok(Push::Sealed(_))));
    }

    #[test]
    fn rejected_first_event_leaves_no_phantom_cascade() {
        let mut ing = ingestor();
        // First-ever event of cascade 9 is inconsistent.
        assert!(ing
            .push_line(1, r#"{"cascade": 9, "node": 3, "t": 1, "parent": 2}"#)
            .is_err());
        assert_eq!(ing.open_cascades(), 0);
    }
}
