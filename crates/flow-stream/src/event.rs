//! The streaming event-log format: JSONL, one record per line.
//!
//! ```text
//! # comments and blank lines are skipped
//! {"graph": {"nodes": 8, "edges": [[0,1],[0,2],[1,3]]}}
//! {"cascade": 1, "node": 0, "t": 0}
//! {"cascade": 1, "node": 1, "t": 1, "parent": 0}
//! {"cascade": 1, "node": 3, "t": 2, "text": "RT @u1: launch #flow"}
//! {"seal": true}
//! ```
//!
//! The first non-comment line must be the **graph header** fixing the
//! node universe and edge set every later event is validated against.
//! Each event line records one node activation in one cascade at one
//! logical time. Attribution is optional and comes in two forms:
//!
//! * `"parent": u` — an explicit attributed edge-firing `u → node`;
//! * `"text": "RT @u1: …"` — a raw tweet body; the nearest retweet
//!   ancestor parsed by [`flow_twitter::parse::parse_tweet`] is the
//!   parent, with handles resolved through the `u<id>` convention of
//!   [`flow_twitter::corpus::Corpus`]. Text without retweet syntax is
//!   an ordinary unattributed activation.
//!
//! `{"seal": true}` marks an epoch boundary: the ingestor closes every
//! open cascade into an [`crate::EpochDelta`].
//!
//! Parsing is hand-written over the vendored value-model serde, like
//! `flow-serve`'s query files: malformed lines surface as typed errors
//! carrying the 1-based line number.

use flow_graph::NodeId;
use flow_twitter::corpus::Corpus;
use flow_twitter::parse::parse_tweet;
use serde::{Deserialize, Error as SerdeError, Value};

/// The graph header: the node universe and edge set of the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Directed edges as `(src, dst)` pairs, in edge-id order.
    pub edges: Vec<(u32, u32)>,
}

impl GraphSpec {
    /// Builds the [`flow_graph::DiGraph`] this header describes.
    pub fn to_graph(&self) -> flow_graph::DiGraph {
        flow_graph::graph::graph_from_edges(self.nodes, &self.edges)
    }
}

impl Deserialize for GraphSpec {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let edges = match v.get("edges") {
            Some(Value::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let Value::Array(pair) = item else {
                        return Err(SerdeError::msg("each edge must be a [src, dst] array"));
                    };
                    match pair.as_slice() {
                        [u, w] => out.push((u32::from_value(u)?, u32::from_value(w)?)),
                        _ => {
                            return Err(SerdeError::msg("each edge must have exactly 2 elements"));
                        }
                    }
                }
                out
            }
            _ => return Err(SerdeError::msg("graph header needs an `edges` array")),
        };
        Ok(GraphSpec {
            nodes: serde::field(v, "nodes")?,
            edges,
        })
    }
}

/// One cascade activation event, after attribution resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamEvent {
    /// Cascade (information object) the activation belongs to.
    pub cascade: u64,
    /// The node that activated.
    pub node: NodeId,
    /// Logical activation time within the cascade.
    pub t: u32,
    /// Attributed parent (`None` = unattributed activation).
    pub parent: Option<NodeId>,
}

/// One classified line of the event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventLine {
    /// The graph header.
    Graph(GraphSpec),
    /// An activation event.
    Event(StreamEvent),
    /// An epoch-seal marker.
    Seal,
    /// A comment or blank line.
    Skip,
}

fn opt_field<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, SerdeError> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(inner) => T::from_value(inner)
            .map(Some)
            .map_err(|e| SerdeError(format!("field `{name}`: {}", e.0))),
    }
}

/// Classifies and parses one raw line. Returns a human-readable reason
/// on malformed input; the ingestor wraps it into the typed
/// [`flow_core::FlowError::RejectedEvent`] with the line number.
pub fn parse_line(raw: &str) -> Result<EventLine, String> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(EventLine::Skip);
    }
    let v: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
    if let Some(g) = v.get("graph") {
        return GraphSpec::from_value(g)
            .map(EventLine::Graph)
            .map_err(|e| e.0);
    }
    if v.get("seal").is_some() {
        return Ok(EventLine::Seal);
    }
    let cascade: u64 = serde::field(&v, "cascade").map_err(|e: SerdeError| e.0)?;
    let node: u32 = serde::field(&v, "node").map_err(|e: SerdeError| e.0)?;
    let t: u32 = serde::field(&v, "t").map_err(|e: SerdeError| e.0)?;
    // Explicit `parent` wins over `text`; a tweet body without retweet
    // syntax is simply unattributed.
    let parent = match opt_field::<u32>(&v, "parent").map_err(|e| e.0)? {
        Some(p) => Some(NodeId(p)),
        None => match opt_field::<String>(&v, "text").map_err(|e| e.0)? {
            Some(text) => {
                let parsed = parse_tweet(&text);
                match parsed.direct_parent() {
                    Some(handle) => Some(Corpus::user_of_handle(handle).ok_or_else(|| {
                        format!("retweet ancestor `@{handle}` is not a `u<id>` handle")
                    })?),
                    None => None,
                }
            }
            None => None,
        },
    };
    Ok(EventLine::Event(StreamEvent {
        cascade,
        node: NodeId(node),
        t,
        parent,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_blanks_skip() {
        assert_eq!(parse_line(""), Ok(EventLine::Skip));
        assert_eq!(parse_line("  # hello"), Ok(EventLine::Skip));
    }

    #[test]
    fn graph_header_parses() {
        let line = r#"{"graph": {"nodes": 4, "edges": [[0,1],[1,3]]}}"#;
        let EventLine::Graph(g) = parse_line(line).unwrap() else {
            panic!("expected graph header");
        };
        assert_eq!(g.nodes, 4);
        assert_eq!(g.edges, vec![(0, 1), (1, 3)]);
        let graph = g.to_graph();
        assert_eq!(graph.node_count(), 4);
        assert_eq!(graph.edge_count(), 2);
    }

    #[test]
    fn seal_marker_parses() {
        assert_eq!(parse_line(r#"{"seal": true}"#), Ok(EventLine::Seal));
        assert_eq!(parse_line(r#"{"seal": 1}"#), Ok(EventLine::Seal));
    }

    #[test]
    fn unattributed_event_parses() {
        let EventLine::Event(e) = parse_line(r#"{"cascade": 7, "node": 2, "t": 3}"#).unwrap()
        else {
            panic!("expected event");
        };
        assert_eq!(e.cascade, 7);
        assert_eq!(e.node, NodeId(2));
        assert_eq!(e.t, 3);
        assert_eq!(e.parent, None);
    }

    #[test]
    fn explicit_parent_attribution() {
        let EventLine::Event(e) =
            parse_line(r#"{"cascade": 1, "node": 2, "t": 1, "parent": 0}"#).unwrap()
        else {
            panic!("expected event");
        };
        assert_eq!(e.parent, Some(NodeId(0)));
    }

    #[test]
    fn tweet_text_attribution_via_retweet_chain() {
        let line = r#"{"cascade": 1, "node": 3, "t": 2, "text": "RT @u1: RT @u0: m9 #flow"}"#;
        let EventLine::Event(e) = parse_line(line).unwrap() else {
            panic!("expected event");
        };
        // Nearest ancestor = direct parent.
        assert_eq!(e.parent, Some(NodeId(1)));
    }

    #[test]
    fn tweet_text_without_retweet_is_unattributed() {
        let line = r#"{"cascade": 1, "node": 3, "t": 2, "text": "original words #flow"}"#;
        let EventLine::Event(e) = parse_line(line).unwrap() else {
            panic!("expected event");
        };
        assert_eq!(e.parent, None);
    }

    #[test]
    fn malformed_lines_report_reasons() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"cascade": 1, "node": 2}"#).is_err(), "no t");
        assert!(
            parse_line(r#"{"graph": {"nodes": 2}}"#).is_err(),
            "no edges"
        );
        // A retweet ancestor outside the corpus handle convention is
        // unresolvable, hence malformed.
        let bad = r#"{"cascade": 1, "node": 3, "t": 2, "text": "RT @alice: hi"}"#;
        assert!(parse_line(bad).is_err());
    }
}
